"""The 5-stage virtual-channel router.

Pipeline (paper §IV): buffer write / route compute (BW/RC), VC
allocation (VA), switch allocation (SA), switch traversal (ST), link
traversal (LT).  Retransmission buffers sit at the output, after the
crossbar (the paper's worst-case placement, Fig. 5).

The simulator is cycle-driven: the network calls the phase methods in a
fixed order every cycle, and per-flit / per-VC ``*_cycle`` guards ensure
a flit advances at most one stage per cycle, so latency through an
uncongested router is the paper's 5 cycles (4 in-router stages + LT).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union, TYPE_CHECKING

from repro.noc.arbiters import RoundRobinArbiter
from repro.noc.config import NoCConfig
from repro.noc.credit import CreditTracker
from repro.noc.flit import Flit
from repro.noc.link import Link, Transmission
from repro.noc.receiver import EccReceiver
from repro.noc.retrans import RetransBuffer
from repro.noc.topology import Direction, dateline_high

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.lob import LObEncoder
    from repro.ecc import Secded

#: Input ports: a mesh direction or ("inj", local core index).
#: Output targets: a mesh direction or ("ej", local core index).
PortKey = Union[Direction, tuple[str, int]]


class SchedulingPolicy:
    """Hook points for QoS schemes (overridden by the TDM baseline)."""

    def flit_may_use_switch(self, flit: Flit, cycle: int) -> bool:
        return True

    def flit_may_use_link(self, flit: Flit, cycle: int) -> bool:
        return True

    def allowed_out_vcs(self, flit: Flit, num_vcs: int) -> range:
        return range(num_vcs)

    def may_inject(self, flit: Flit, cycle: int) -> bool:
        return True

    def may_admit_retrans(self, flit: Flit, retrans: RetransBuffer) -> bool:
        """Gate admission into a retransmission buffer (TDM partitions
        the slots per domain so one domain's pinned retransmissions
        cannot starve the other's)."""
        return True


class VCState:
    """One virtual channel of an input port."""

    __slots__ = ("capacity", "buffer", "route_out", "rc_cycle", "out_vc",
                 "va_cycle", "cur_pkt")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.buffer: deque[Flit] = deque()
        self.route_out: Optional[PortKey] = None
        self.rc_cycle = -1
        self.out_vc: Optional[int] = None
        self.va_cycle = -1
        #: pkt_id the pinned route/VC state belongs to, so a purge of a
        #: dropped packet can find and reset stale per-VC state even
        #: after the packet's flits have left the buffer
        self.cur_pkt: Optional[int] = None

    @property
    def occupancy(self) -> int:
        return len(self.buffer)

    @property
    def is_full(self) -> bool:
        return len(self.buffer) >= self.capacity

    @property
    def head(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None

    def push(self, flit: Flit) -> None:
        if self.is_full:
            raise RuntimeError("VC overflow: credit flow control broken")
        self.buffer.append(flit)

    def pop(self) -> Flit:
        return self.buffer.popleft()

    def reset_packet_state(self) -> None:
        self.route_out = None
        self.rc_cycle = -1
        self.out_vc = None
        self.va_cycle = -1
        self.cur_pkt = None


class InputPort:
    """A router input: VC buffers plus (for link inputs) the receive
    pipeline and a handle on the upstream credit tracker."""

    __slots__ = ("key", "vcs", "receiver", "upstream_credits")

    def __init__(self, key: PortKey, cfg: NoCConfig):
        self.key = key
        self.vcs = [VCState(cfg.vc_depth) for _ in range(cfg.num_vcs)]
        self.receiver: Optional[EccReceiver] = None
        self.upstream_credits: Optional[CreditTracker] = None

    @property
    def occupancy(self) -> int:
        return sum(vc.occupancy for vc in self.vcs)

    @property
    def is_full(self) -> bool:
        return all(vc.is_full for vc in self.vcs)


class OutputPort:
    """A direction output: retransmission buffer + link + credits."""

    __slots__ = ("direction", "link", "retrans", "credits", "holders",
                 "holder_pkts", "lob", "vc_seq_counters", "last_ack_cycle")

    def __init__(self, direction: Direction, link: Link, cfg: NoCConfig):
        self.direction = direction
        self.link = link
        self.retrans = RetransBuffer(cfg.retrans_depth)
        self.credits = CreditTracker(
            cfg.num_vcs, cfg.vc_depth, cfg.credit_latency
        )
        #: which (input key, vc index) holds each downstream VC; held from
        #: VA until the packet's tail flit is ACKed by the neighbour, so
        #: retransmissions cannot interleave two packets on one VC
        self.holders: list[Optional[tuple[PortKey, int]]] = [None] * cfg.num_vcs
        #: pkt_id behind each holder; a dropped packet whose tail will
        #: never cross this link must have its grants force-released
        self.holder_pkts: list[Optional[int]] = [None] * cfg.num_vcs
        self.lob: Optional["LObEncoder"] = None
        #: next per-VC link sequence number
        self.vc_seq_counters = [0] * cfg.num_vcs
        #: cycle of the most recent positive acknowledgement
        self.last_ack_cycle = -1

    def is_blocked(self, cycle: int, stall_window: int = 24) -> bool:
        """Completely stalled from back pressure (paper Fig. 11 metric).

        Three stall signatures: the retransmission buffer is pinned
        full; every downstream VC's credits are exhausted; or the port
        holds unacknowledged flits but has made no forward progress
        (no ACK) for ``stall_window`` cycles — which catches the case
        where a pinned packet per VC starves VC allocation long before
        the buffer itself fills.
        """
        if self.retrans.is_full:
            return True
        if all(
            self.credits.available(vc) == 0
            for vc in range(self.credits.num_vcs)
        ):
            return True
        return (
            self.retrans.oldest_wait(cycle) > stall_window
            and cycle - self.last_ack_cycle > stall_window
        )


class EjectPort:
    """Queue from the router to one local core."""

    __slots__ = ("core", "queue", "capacity")

    def __init__(self, core: int, capacity: int):
        self.core = core
        self.queue: deque[Flit] = deque()
        self.capacity = capacity

    @property
    def is_full(self) -> bool:
        return len(self.queue) >= self.capacity


class Router:
    """One mesh router with its local cores' injection/ejection ports."""

    def __init__(
        self,
        cfg: NoCConfig,
        router_id: int,
        route_fn,
        policy: Optional[SchedulingPolicy] = None,
    ):
        self.cfg = cfg
        self.id = router_id
        self.route_fn = route_fn
        self.policy = policy or SchedulingPolicy()

        self.inputs: dict[PortKey, InputPort] = {}
        self.outputs: dict[Direction, OutputPort] = {}
        self.ejects: dict[int, EjectPort] = {}
        for local in range(cfg.concentration):
            self.inputs[("inj", local)] = InputPort(("inj", local), cfg)
            self.ejects[local] = EjectPort(
                cfg.core_of(router_id, local), cfg.ejection_depth
            )

        # Arbiters are created lazily once wiring is complete.
        self._input_keys: list[PortKey] = []
        self._sa_input_arb: dict[PortKey, RoundRobinArbiter] = {}
        self._sa_output_arb: dict[PortKey, RoundRobinArbiter] = {}
        self._va_arb: dict[Direction, RoundRobinArbiter] = {}
        self._wired = False

        # counters
        self.flits_switched = 0
        self.flits_ejected = 0

        #: input directions whose upstream credit tracker was released
        #: during the most recent :meth:`switch_traverse` call; the
        #: network uses this to wake the upstream router under
        #: active-set stepping.
        self.credit_release_dirs: list[Direction] = []
        #: input-port key of the head currently in route compute (an
        #: adaptive route_fn reads it to refuse 180-degree turns)
        self.routing_input: Optional[PortKey] = None

    # -- wiring (done by Network) ----------------------------------------
    def add_link_input(self, from_direction: Direction) -> InputPort:
        port = InputPort(from_direction, self.cfg)
        self.inputs[from_direction] = port
        return port

    def add_link_output(self, direction: Direction, link: Link) -> OutputPort:
        port = OutputPort(direction, link, self.cfg)
        self.outputs[direction] = port
        return port

    def finish_wiring(self) -> None:
        self._input_keys = list(self.inputs.keys())
        n_in = len(self._input_keys)
        for key in self._input_keys:
            self._sa_input_arb[key] = RoundRobinArbiter(self.cfg.num_vcs)
        out_keys: list[PortKey] = list(self.outputs.keys()) + [
            ("ej", local) for local in self.ejects
        ]
        for key in out_keys:
            self._sa_output_arb[key] = RoundRobinArbiter(n_in)
        for direction in self.outputs:
            self._va_arb[direction] = RoundRobinArbiter(
                n_in * self.cfg.num_vcs
            )
        self._wired = True

    # -- BW/RC -------------------------------------------------------------
    def route_compute(self, cycle: int) -> None:
        for port in self.inputs.values():
            for vc in port.vcs:
                head = vc.head
                if (
                    head is None
                    or vc.route_out is not None
                    or not head.is_head
                    or head.last_move_cycle >= cycle
                ):
                    continue
                vc.cur_pkt = head.pkt_id
                if head.dst_router == self.id:
                    local = head.dst_core % self.cfg.concentration
                    vc.route_out = ("ej", local)
                else:
                    # arrival port, for routing functions that forbid
                    # 180-degree turns (non-minimal containment detours)
                    self.routing_input = port.key
                    direction = self.route_fn(
                        self.id, head.dst_router, head.src_router, self
                    )
                    if direction is None:
                        # Routing says "local" but the id disagrees (can
                        # happen after header SDC); eject here and let
                        # the endpoint detect the misdelivery.
                        local = head.dst_core % self.cfg.concentration
                        vc.route_out = ("ej", local)
                    else:
                        vc.route_out = direction
                vc.rc_cycle = cycle

    # -- VA -----------------------------------------------------------------
    def vc_allocate(self, cycle: int) -> None:
        num_vcs = self.cfg.num_vcs
        # Single pass over the input VCs, bucketing requesters by their
        # routed output; outputs with no requesters cost nothing.
        buckets: dict[
            Direction, dict[int, tuple[PortKey, int, VCState]]
        ] = {}
        for in_idx, key in enumerate(self._input_keys):
            port = self.inputs[key]
            for vc_idx, vc in enumerate(port.vcs):
                if vc.out_vc is not None or vc.rc_cycle >= cycle:
                    continue
                route = vc.route_out
                if route is None or isinstance(route, tuple):
                    continue
                buffer = vc.buffer
                if not buffer or not buffer[0].is_head:
                    continue
                buckets.setdefault(route, {})[
                    in_idx * num_vcs + vc_idx
                ] = (key, vc_idx, vc)
        torus = self.cfg.topology == "torus"
        dateline_half = num_vcs // 2
        for direction, req_info in buckets.items():
            out = self.outputs[direction]
            holders = out.holders
            free_set = {v for v in range(num_vcs) if holders[v] is None}
            if not free_set:
                continue
            requesters: list[int] = []
            allowed_by_flat: dict[int, list[int]] = {}
            for flat, (key, vc_idx, vc) in req_info.items():
                allowed = [
                    v
                    for v in self.policy.allowed_out_vcs(vc.buffer[0], num_vcs)
                    if v in free_set
                ]
                if torus:
                    # dateline VC discipline: low half before the ring's
                    # wrap edge, high half at/after it — the restriction
                    # that makes torus dimension-order routing
                    # deadlock-free (repro.noc.topology.dateline_high)
                    high = dateline_high(
                        self.cfg,
                        self.id,
                        vc.buffer[0].src_router,
                        direction,
                    )
                    allowed = [
                        v
                        for v in allowed
                        if (v >= dateline_half) == high
                    ]
                if allowed:
                    requesters.append(flat)
                    allowed_by_flat[flat] = allowed
            if not requesters:
                continue
            winner = self._va_arb[direction].grant_indices(requesters)
            if winner is None:
                continue
            key, vc_idx, vc = req_info[winner]
            grant_vc = allowed_by_flat[winner][0]
            vc.out_vc = grant_vc
            vc.va_cycle = cycle
            out.holders[grant_vc] = (key, vc_idx)
            out.holder_pkts[grant_vc] = vc.buffer[0].pkt_id

    # -- SA + ST -------------------------------------------------------------
    def _movable(self, port: InputPort, vc: VCState, cycle: int) -> bool:
        buffer = vc.buffer
        if not buffer:
            return False
        head = buffer[0]
        if head.last_move_cycle >= cycle:
            return False
        if vc.route_out is None or vc.rc_cycle >= cycle:
            return False
        if not self.policy.flit_may_use_switch(head, cycle):
            return False
        route = vc.route_out
        if isinstance(route, tuple):  # eject
            return not self.ejects[route[1]].is_full
        out = self.outputs[route]
        if vc.out_vc is None or vc.va_cycle >= cycle:
            return False
        if out.retrans.is_full:
            return False
        if not self.policy.may_admit_retrans(head, out.retrans):
            return False
        return out.credits.available(vc.out_vc) > 0

    def switch_traverse(self, cycle: int) -> int:
        """Run SA then move the winning flits through the crossbar.

        Returns the number of flits switched.
        """
        self.credit_release_dirs.clear()
        # Input-side arbitration: each input port nominates one VC.
        nominations: dict[PortKey, tuple[int, VCState]] = {}
        requests_per_out: dict[PortKey, list[int]] = {}
        for in_idx, key in enumerate(self._input_keys):
            port = self.inputs[key]
            candidates = [
                vc_idx
                for vc_idx, vc in enumerate(port.vcs)
                if self._movable(port, vc, cycle)
            ]
            if not candidates:
                continue
            pick = self._sa_input_arb[key].grant_indices(candidates)
            if pick is None:
                continue
            vc = port.vcs[pick]
            nominations[key] = (pick, vc)
            requests_per_out.setdefault(vc.route_out, []).append(in_idx)

        # Output-side arbitration: one winner per output.
        moved = 0
        for out_key, in_indices in requests_per_out.items():
            winner_idx = self._sa_output_arb[out_key].grant_indices(in_indices)
            if winner_idx is None:
                continue
            key = self._input_keys[winner_idx]
            vc_idx, vc = nominations[key]
            flit = vc.pop()
            flit.last_move_cycle = cycle
            moved += 1
            self.flits_switched += 1

            if isinstance(out_key, tuple):  # ejection
                self.ejects[out_key[1]].queue.append(flit)
            else:
                out = self.outputs[out_key]
                tag = out.retrans.admit(flit, vc.out_vc, cycle)
                assert tag is not None, "retrans admit after is_full check"
                entry = out.retrans.get(tag)
                entry.vc_seq = out.vc_seq_counters[vc.out_vc]
                out.vc_seq_counters[vc.out_vc] += 1
                out.credits.consume(vc.out_vc)

            # Free the input buffer slot: return a credit upstream.
            port = self.inputs[key]
            if port.upstream_credits is not None:
                port.upstream_credits.release(vc_idx, cycle)
                self.credit_release_dirs.append(key)

            if flit.is_tail:
                vc.reset_packet_state()
        return moved

    # -- LT (output side) -----------------------------------------------------
    def launch_links(self, cycle: int, codec: "Secded") -> None:
        for out in self.outputs.values():
            if out.link.disabled or out.link.paused:
                continue
            candidates = [
                entry
                for entry in out.retrans.ready_entries(cycle)
                if self.policy.flit_may_use_link(entry.flit, cycle)
            ]
            if not candidates:
                continue
            if out.lob is not None:
                selection = out.lob.select_and_encode(candidates, cycle)
                if selection is None:
                    continue
                entry, data, descriptor = selection
            else:
                entry = candidates[0]
                data, descriptor = entry.flit.data, None
            codeword = codec.encode(data)
            tx = Transmission(
                tag=entry.tag,
                vc=entry.out_vc,
                vc_seq=entry.vc_seq,
                codeword=codeword,
                flit=entry.flit,
                ob=descriptor,
                launch_cycle=cycle,
            )
            out.link.launch(tx, cycle)
            out.retrans.mark_launched(entry.tag, cycle)

    # -- ACK processing ----------------------------------------------------
    def process_acks(self, cycle: int) -> None:
        for out in self.outputs.values():
            for ack in out.link.pop_acks(cycle):
                if out.link.ack_hooks:
                    entry_for_hook = out.retrans.get(ack.tag)
                    flit = entry_for_hook.flit if entry_for_hook else None
                    for hook in out.link.ack_hooks:
                        hook(ack, cycle, flit)
                if ack.ok:
                    out.last_ack_cycle = cycle
                    entry = out.retrans.on_ack(ack.tag)
                    if entry is not None and entry.flit.is_tail:
                        # Tail safely across: the downstream VC may now be
                        # re-allocated to another packet.
                        out.holders[entry.out_vc] = None
                        out.holder_pkts[entry.out_vc] = None
                    if out.lob is not None and ack.ob_success is not None:
                        out.lob.record_success(
                            ack.flow_signature, ack.ob_success
                        )
                else:
                    out.retrans.on_nack(ack.tag, ack.advice)

    # -- ejection ------------------------------------------------------------
    def drain_ejects(self, cycle: int) -> list[Flit]:
        """Each local core consumes at most one flit per cycle."""
        delivered = []
        for port in self.ejects.values():
            if port.queue:
                flit = port.queue.popleft()
                flit.ejected_cycle = cycle
                delivered.append(flit)
                self.flits_ejected += 1
        return delivered

    # -- introspection ------------------------------------------------------
    def link_input_occupancy(self) -> int:
        return sum(
            port.occupancy
            for key, port in self.inputs.items()
            if isinstance(key, Direction)
        )

    def injection_occupancy(self) -> int:
        return sum(
            port.occupancy
            for key, port in self.inputs.items()
            if isinstance(key, tuple)
        )

    def output_occupancy(self) -> int:
        return sum(out.retrans.occupancy for out in self.outputs.values())

    def any_output_blocked(self, cycle: int) -> bool:
        return any(out.is_blocked(cycle) for out in self.outputs.values())

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle >= ``cycle`` this router may do work, or
        ``None`` when it holds no state at all.

        Buffered flits, staged receiver deliveries and ejection queues
        pin the clock to "now" (their pipeline guards are per-cycle);
        the only *future* demands a router can prove are deferred
        retransmission entries and credit returns still in flight.  Its
        links' wires are accounted separately through the network's
        active-link set.
        """
        for port in self.inputs.values():
            if port.occupancy:
                return cycle
            receiver = port.receiver
            if receiver is not None and receiver.staged_count:
                return cycle
        for eject in self.ejects.values():
            if eject.queue:
                return cycle
        best: Optional[int] = None
        for out in self.outputs.values():
            when = out.retrans.next_event_cycle(cycle)
            if when is not None:
                if when <= cycle:
                    return cycle
                if best is None or when < best:
                    best = when
            when = out.credits.next_visible_cycle()
            if when is not None:
                if when <= cycle:
                    return cycle
                if best is None or when < best:
                    best = when
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Router(id={self.id})"
