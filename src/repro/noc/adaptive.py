"""Turn-model adaptive routing (west-first and odd-even).

The paper's link-selection analysis (§III-A) notes that "in a
flood-based DoS attack, x-y routing performs better than multiple
adaptive algorithms when the injection rate is less than 0.65" — the
adaptivity spreads a hotspot's congestion into neighboring regions.
These two classic deadlock-free adaptive algorithms let the flood bench
reproduce that comparison.

* **west-first** (Glass & Ni): all westward movement happens first and
  deterministically; the remaining east/north/south moves are fully
  adaptive.
* **odd-even** (Chiu): turn restrictions alternate by column — an
  east→north/east→south turn is forbidden in even columns, a
  north→west/south→west turn is forbidden in odd columns — implemented
  via the published ROUTE candidate function.

The *selection function* picks, among the admissible productive
directions, the output with the most downstream credits (least
congested), falling back deterministically on ties.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.noc.config import NoCConfig
from repro.noc.topology import Direction, neighbor

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.router import Router


def _sign_dir_y(ey: int) -> Direction:
    return Direction.NORTH if ey > 0 else Direction.SOUTH


def west_first_candidates(
    cfg: NoCConfig, cur: int, dst: int
) -> list[Direction]:
    """Admissible productive directions under the west-first turn model."""
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    ex, ey = dx - cx, dy - cy
    if ex == 0 and ey == 0:
        return []
    if ex < 0:
        # all west moves first, deterministically
        return [Direction.WEST]
    candidates: list[Direction] = []
    if ex > 0:
        candidates.append(Direction.EAST)
    if ey != 0:
        candidates.append(_sign_dir_y(ey))
    return candidates


def odd_even_candidates(
    cfg: NoCConfig, cur: int, dst: int, src: int
) -> list[Direction]:
    """Chiu's ROUTE candidate set for the odd-even turn model."""
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    sx, _sy = cfg.router_xy(src)
    ex, ey = dx - cx, dy - cy
    if ex == 0 and ey == 0:
        return []
    candidates: list[Direction] = []
    if ex == 0:
        candidates.append(_sign_dir_y(ey))
        return candidates
    if ex > 0:  # eastbound
        if ey == 0:
            candidates.append(Direction.EAST)
        else:
            # a north/south move here implies a later EN/ES-style turn
            # context; allowed only in odd columns or the source column
            if cx % 2 == 1 or cx == sx:
                candidates.append(_sign_dir_y(ey))
            # going further east is allowed unless the destination is in
            # an even column exactly one hop east (the final EN/ES turn
            # there would be illegal)
            if dx % 2 == 1 or ex != 1:
                candidates.append(Direction.EAST)
    else:  # westbound
        candidates.append(Direction.WEST)
        # NW/SW turns are forbidden in odd columns, so adaptively moving
        # vertically while still west of the destination is allowed only
        # in even columns
        if cx % 2 == 0 and ey != 0:
            candidates.append(_sign_dir_y(ey))
    return candidates


class AdaptiveRouting:
    """Turn-model adaptive routing with credit-based output selection.

    Usable as a ``route_fn``: ``route(cur, dst, src, router)``.  When no
    router handle is supplied (e.g. analytic path probing) the first
    admissible direction is chosen deterministically.
    """

    MODELS = ("west-first", "odd-even")

    def __init__(self, cfg: NoCConfig, model: str = "west-first"):
        if model not in self.MODELS:
            raise ValueError(f"unknown turn model {model!r}")
        self.cfg = cfg
        self.model = model

    def candidates(
        self, cur: int, dst: int, src: Optional[int] = None
    ) -> list[Direction]:
        if self.model == "west-first":
            return west_first_candidates(self.cfg, cur, dst)
        return odd_even_candidates(
            self.cfg, cur, dst, src if src is not None else cur
        )

    @staticmethod
    def _congestion_score(router: "Router", direction: Direction) -> int:
        """Free downstream credits (higher = less congested)."""
        out = router.outputs.get(direction)
        if out is None or out.link.disabled:
            return -1
        free = sum(
            out.credits.available(vc) for vc in range(out.credits.num_vcs)
        )
        if out.retrans.is_full:
            free = 0
        return free

    def route(
        self,
        cur: int,
        dst: int,
        src: Optional[int] = None,
        router: Optional["Router"] = None,
    ) -> Optional[Direction]:
        options = self.candidates(cur, dst, src)
        if not options:
            return None
        # defensive: never step off the mesh (the candidate functions
        # only emit productive directions, which are always on-mesh)
        options = [
            d for d in options if neighbor(self.cfg, cur, d) is not None
        ]
        if router is None or len(options) == 1:
            return options[0]
        return max(options, key=lambda d: self._congestion_score(router, d))
