"""Turn-model adaptive routing (west-first and odd-even).

The paper's link-selection analysis (§III-A) notes that "in a
flood-based DoS attack, x-y routing performs better than multiple
adaptive algorithms when the injection rate is less than 0.65" — the
adaptivity spreads a hotspot's congestion into neighboring regions.
These two classic deadlock-free adaptive algorithms let the flood bench
reproduce that comparison.

* **west-first** (Glass & Ni): all westward movement happens first and
  deterministically; the remaining east/north/south moves are fully
  adaptive.
* **odd-even** (Chiu): turn restrictions alternate by column — an
  east→north/east→south turn is forbidden in even columns, a
  north→west/south→west turn is forbidden in odd columns — implemented
  via the published ROUTE candidate function.

The *selection function* picks, among the admissible productive
directions, the output with the most downstream credits (least
congested), falling back deterministically on ties.

The containment coordinator (:mod:`repro.resilience.containment`)
reuses these turn models to route *around* condemned links: an
``avoid`` set removes links from the candidate sets, and a per-
destination reachability fixpoint filters out candidates that would
strand a packet behind the avoided region.  Because the xy turn set
(E→N, E→S, W→N, W→S) is a subset of west-first's legal turns, switching
a live network from xy to west-first mid-flight introduces no new turn
cycles — the coordinator's default reroute model is therefore
west-first.  Odd-even *forbids* EN/ES turns in even columns, which xy
freely uses, so mixing odd-even with in-flight xy packets is not
deadlock-safe; it remains available for networks already running
odd-even.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.noc.config import NoCConfig
from repro.noc.topology import (
    BASE_DIRECTIONS,
    Direction,
    EXPRESS_OF,
    LinkKey,
    OPPOSITE,
    base_direction,
    neighbor,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.router import Router


def _sign_dir_y(ey: int) -> Direction:
    return Direction.NORTH if ey > 0 else Direction.SOUTH


def west_first_candidates(
    cfg: NoCConfig, cur: int, dst: int
) -> list[Direction]:
    """Admissible productive directions under the west-first turn model.

    On an express mesh the span-k variants join the candidate set
    whenever the remaining displacement covers a full span.  Express
    channels move monotonically in their base direction, so every turn
    the model forbids for a base channel is equally forbidden (and
    equally absent) for its express variant — the deadlock argument is
    unchanged.
    """
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    ex, ey = dx - cx, dy - cy
    k = cfg.express_interval
    if ex == 0 and ey == 0:
        return []
    if ex < 0:
        # all west moves first; express-west when a full span remains
        if k and -ex >= k:
            return [Direction.EXPRESS_WEST, Direction.WEST]
        return [Direction.WEST]
    candidates: list[Direction] = []
    if ex > 0:
        if k and ex >= k:
            candidates.append(Direction.EXPRESS_EAST)
        candidates.append(Direction.EAST)
    if ey != 0:
        if k and abs(ey) >= k:
            candidates.append(EXPRESS_OF[_sign_dir_y(ey)])
        candidates.append(_sign_dir_y(ey))
    return candidates


def odd_even_candidates(
    cfg: NoCConfig, cur: int, dst: int, src: int
) -> list[Direction]:
    """Chiu's ROUTE candidate set for the odd-even turn model."""
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    sx, _sy = cfg.router_xy(src)
    ex, ey = dx - cx, dy - cy
    if ex == 0 and ey == 0:
        return []
    candidates: list[Direction] = []
    if ex == 0:
        candidates.append(_sign_dir_y(ey))
        return candidates
    if ex > 0:  # eastbound
        if ey == 0:
            candidates.append(Direction.EAST)
        else:
            # a north/south move here implies a later EN/ES-style turn
            # context; allowed only in odd columns or the source column
            if cx % 2 == 1 or cx == sx:
                candidates.append(_sign_dir_y(ey))
            # going further east is allowed unless the destination is in
            # an even column exactly one hop east (the final EN/ES turn
            # there would be illegal)
            if dx % 2 == 1 or ex != 1:
                candidates.append(Direction.EAST)
    else:  # westbound
        candidates.append(Direction.WEST)
        # NW/SW turns are forbidden in odd columns, so adaptively moving
        # vertically while still west of the destination is allowed only
        # in even columns
        if cx % 2 == 0 and ey != 0:
            candidates.append(_sign_dir_y(ey))
    return candidates


class AdaptiveRouting:
    """Turn-model adaptive routing with credit-based output selection.

    Usable as a ``route_fn``: ``route(cur, dst, src, router)``.  When no
    router handle is supplied (e.g. analytic path probing) the first
    admissible direction is chosen deterministically.
    """

    MODELS = ("west-first", "odd-even")

    def __init__(
        self,
        cfg: NoCConfig,
        model: str = "west-first",
        avoid: Iterable[LinkKey] = (),
    ):
        if model not in self.MODELS:
            raise ValueError(f"unknown turn model {model!r}")
        self.cfg = cfg
        self.model = model
        #: links removed from every candidate set (condemned/quarantined)
        self.avoid: frozenset[LinkKey] = frozenset(avoid)
        #: dst -> (router, banned-output) states that can still reach it
        self._live: dict[int, frozenset] = {}

    def _base_candidates(
        self, cur: int, dst: int, src: Optional[int] = None
    ) -> list[Direction]:
        if self.model == "west-first":
            return west_first_candidates(self.cfg, cur, dst)
        return odd_even_candidates(
            self.cfg, cur, dst, src if src is not None else cur
        )

    def _detour_candidates(self, cur: int, dst: int) -> list[Direction]:
        """Non-minimal west-first moves, for when every productive
        candidate is avoided.

        West-first forbids only turns *into* west, so once a packet has
        no remaining west moves (``ex >= 0``) any sequence of
        east/north/south channels is legal — **provided 180-degree
        turns are banned** (:meth:`route` drops the direction back into
        the arrival port).  A channel-dependency cycle over {E, N, S}
        channels has zero net displacement, so it can use no east
        channel (nothing balances it without west) and must therefore
        ping-pong inside one column, which requires a north/south
        reversal somewhere — exactly the banned 180-degree turn.  Turns
        *into* a west channel are forbidden by the model, so no cycle
        can detour through westbound traffic either; this is Glass &
        Ni's non-minimal west-first argument.  East moves are emitted
        only when productive (``ex > 0``) so a packet never overshoots
        its destination column — overshooting would demand a later
        (forbidden) west move.  Westbound traffic (``ex < 0``) gets no
        detours at all: any vertical or east move would require a turn
        back into west — ``turn_model_connected`` therefore refuses
        condemnations of west/vertical sole routes instead.
        """
        cx, _cy = self.cfg.router_xy(cur)
        dx, _dy = self.cfg.router_xy(dst)
        if dx < cx:
            return []
        options = []
        for d in (Direction.EAST, Direction.NORTH, Direction.SOUTH):
            if d is Direction.EAST and dx <= cx:
                continue
            if (cur, d) in self.avoid:
                continue
            if neighbor(self.cfg, cur, d) is not None:
                options.append(d)
        return options

    def _strict_candidates(
        self, cur: int, dst: int, src: Optional[int] = None
    ) -> list[Direction]:
        """Avoid-filtered candidates, detour-extended for west-first;
        empty means ``cur`` genuinely cannot make legal progress."""
        base = self._base_candidates(cur, dst, src)
        if not self.avoid:
            return base
        allowed = [d for d in base if (cur, d) not in self.avoid]
        if not allowed and self.model == "west-first":
            allowed = self._detour_candidates(cur, dst)
        return allowed

    def _state_candidates(
        self,
        cur: int,
        dst: int,
        banned: Optional[Direction],
        src: Optional[int] = None,
    ) -> list[Direction]:
        """Candidates for a packet whose arrival port bans ``banned``.

        The no-reversal rule removes ``banned`` from the strict set; a
        state whose *every* remaining move is that reversal extends
        into the non-minimal detour set (west-first only) — e.g. a
        packet that overshot its destination row while detouring may
        legally keep overshooting and come back around, but may not
        turn straight back.

        ``banned`` is a *base-direction class*: an express link
        reversing its base direction is the same 180-degree turn (a
        net-zero vertical cycle could otherwise mix span-1 and span-k
        channels without any exact-member reversal), so express
        variants of the banned class are filtered with it."""
        options = [
            d
            for d in self._strict_candidates(cur, dst, src)
            if base_direction(d) is not banned
        ]
        if not options and banned is not None and self.model == "west-first":
            options = [
                d
                for d in self._detour_candidates(cur, dst)
                if base_direction(d) is not banned
            ]
        return options

    def candidates(
        self, cur: int, dst: int, src: Optional[int] = None
    ) -> list[Direction]:
        if not self.avoid:
            return self._base_candidates(cur, dst, src)
        allowed = self._strict_candidates(cur, dst, src)
        if allowed:
            return allowed
        # If every legal move is avoided, keep the minimal set: a
        # route_fn returning None would eject the packet at the wrong
        # router, whereas steering into an avoided (still-draining)
        # link merely feeds the watchdog's drop path.  Admission
        # control (turn_model_connected) keeps this branch unreachable.
        return self._base_candidates(cur, dst, src)

    # -- reachability -----------------------------------------------------
    # Reachability is computed over *states* ``(router, banned)`` where
    # ``banned`` is the output direction a packet at that router may not
    # take — the 180-degree turn back into its arrival port (None for a
    # freshly injected packet).  The state space matters because the
    # no-reversal rule that keeps non-minimal detours deadlock-free also
    # means a router can be reachable yet stuck for packets that arrived
    # from one particular side.

    def live_states(
        self, dst: int
    ) -> "frozenset[tuple[int, Optional[Direction]]]":
        """States from which ``dst`` is reachable under this turn model
        with the avoided links removed and 180-degree turns banned.

        Backward fixpoint over the strict candidate relation; for
        odd-even the candidate set also depends on the packet's source
        column, which is approximated with ``src=cur`` — a conservative
        choice (it enables the source-column exception at every hop,
        and the route-time filter re-checks the next hop anyway).
        """
        cached = self._live.get(dst)
        if cached is not None:
            return cached
        # ``banned`` is a base-direction class (express arrivals fold
        # onto their base), so the state space — and, on a plain mesh,
        # the whole fixpoint — is identical to the pre-topology-layer
        # implementation
        banned_values = (None, *BASE_DIRECTIONS)
        live: set = {(dst, b) for b in banned_values}
        changed = True
        while changed:
            changed = False
            for cur in range(self.cfg.num_routers):
                if cur == dst:
                    continue
                for banned in banned_values:
                    state = (cur, banned)
                    if state in live:
                        continue
                    for d in self._state_candidates(cur, dst, banned, src=cur):
                        nxt = neighbor(self.cfg, cur, d)
                        if nxt is None:
                            continue
                        if (nxt, base_direction(OPPOSITE[d])) in live:
                            live.add(state)
                            changed = True
                            break
        result = frozenset(live)
        self._live[dst] = result
        return result

    def dst_reachable(self, dst: int) -> bool:
        """True iff no packet headed for ``dst`` can reach a stuck
        state: every state forward-reachable from any injection point —
        under the same next-hop choices :meth:`route` makes, including
        its steer-toward-live-states filter — must itself be able to
        reach ``dst``."""
        live = self.live_states(dst)
        frontier = [
            (cur, None)
            for cur in range(self.cfg.num_routers)
            if cur != dst
        ]
        seen = set(frontier)
        while frontier:
            state = frontier.pop()
            if state not in live:
                return False
            cur, banned = state
            options = [
                (d, nxt)
                for d in self._state_candidates(cur, dst, banned, src=cur)
                for nxt in (neighbor(self.cfg, cur, d),)
                if nxt is not None
            ]
            # mirror route(): with several options the live filter
            # steers away from dead-end successors; a sole option is
            # taken unconditionally
            if len(options) > 1:
                live_next = [
                    (d, nxt)
                    for d, nxt in options
                    if (nxt, base_direction(OPPOSITE[d])) in live
                ]
                if live_next:
                    options = live_next
            for d, nxt in options:
                if nxt == dst:
                    continue
                nxt_state = (nxt, base_direction(OPPOSITE[d]))
                if nxt_state not in seen:
                    seen.add(nxt_state)
                    frontier.append(nxt_state)
        return True

    @staticmethod
    def _congestion_score(router: "Router", direction: Direction) -> int:
        """Free downstream credits (higher = less congested)."""
        out = router.outputs.get(direction)
        if out is None or out.link.disabled:
            return -1
        free = sum(
            out.credits.available(vc) for vc in range(out.credits.num_vcs)
        )
        if out.retrans.is_full:
            free = 0
        return free

    def route(
        self,
        cur: int,
        dst: int,
        src: Optional[int] = None,
        router: Optional["Router"] = None,
    ) -> Optional[Direction]:
        options = self.candidates(cur, dst, src)
        if not options:
            return None
        # defensive: never step off the mesh (the candidate functions
        # only emit productive directions, which are always on-mesh)
        options = [
            d for d in options if neighbor(self.cfg, cur, d) is not None
        ]
        if self.avoid:
            options = self._containment_filter(cur, dst, options, router)
        if not options:
            return None
        if router is None or len(options) == 1:
            return options[0]
        return max(options, key=lambda d: self._congestion_score(router, d))

    def _containment_filter(
        self,
        cur: int,
        dst: int,
        options: list[Direction],
        router: Optional["Router"],
    ) -> list[Direction]:
        """Detour-mode safety filters: no 180-degree turns, and no
        handing the packet to a neighbor-state that cannot reach dst."""
        banned: Optional[Direction] = None
        if router is not None:
            arrival = getattr(router, "routing_input", None)
            if isinstance(arrival, Direction):
                banned = base_direction(arrival)
        if banned is not None:
            forward = self._state_candidates(cur, dst, banned, src=cur)
            if forward:
                options = forward
            else:
                # A stuck state (only escape is a reversal).  Taking the
                # reversal could close a channel cycle, so steer into
                # the base minimal set instead: that feeds an avoided
                # (still-draining) link, whose watchdog drop path
                # resubmits the packet end-to-end.  Admission control
                # (turn_model_connected) refuses configurations where
                # this state is reachable, so this is belt-and-braces.
                base = [
                    d
                    for d in self._base_candidates(cur, dst, src=cur)
                    if base_direction(d) is not banned
                    and neighbor(self.cfg, cur, d) is not None
                ]
                return base if base else options
        if len(options) > 1:
            live = self.live_states(dst)
            filtered = [
                d
                for d in options
                if (neighbor(self.cfg, cur, d), base_direction(OPPOSITE[d]))
                in live
            ]
            # admission control guarantees a live candidate exists; keep
            # the unfiltered set as a defensive fallback because
            # returning None here would eject the packet at the wrong
            # router
            if filtered:
                options = filtered
        return options


def avoid_routing(cfg: NoCConfig, model: str, avoid: Iterable[LinkKey] = ()):
    """Containment reroute function for ``model`` with ``avoid`` removed.

    The topology-aware constructor the coordinator uses everywhere it
    previously built :class:`AdaptiveRouting` directly: the turn models
    cover meshes (express included), ``"torus-arc"`` covers tori.
    """
    if model == "torus-arc":
        from repro.noc.torus import TorusArcRouting

        return TorusArcRouting(cfg, avoid)
    return AdaptiveRouting(cfg, model, avoid)


def turn_model_connected(
    cfg: NoCConfig, model: str, avoid: Iterable[LinkKey]
) -> bool:
    """True iff every router can still reach every other router under
    ``model`` with the ``avoid`` links removed.

    This is the containment coordinator's admission check: a
    condemnation whose avoid-set fails it would strand some src/dst
    pair, so the coordinator refuses it and falls back to
    drop-with-notify instead.  Dispatches per reroute model, so it is
    the single admission predicate on every topology.
    """
    if model == "torus-arc":
        from repro.noc.torus import torus_connected

        return torus_connected(cfg, avoid)
    routing = AdaptiveRouting(cfg, model, avoid)
    return all(
        routing.dst_reachable(dst) for dst in range(cfg.num_routers)
    )
