"""Runtime invariant checking for the simulator.

A :class:`NetworkValidator` audits a live network for the conservation
laws the microarchitecture must uphold no matter what faults or trojans
are active.  The test suite runs it inside fault-injection campaigns;
users can attach it while debugging their own extensions::

    validator = NetworkValidator(net)
    for _ in range(1000):
        net.step()
        validator.check()   # raises InvariantViolation with a report

Checked invariants:

* **credit conservation** — for every (link, VC): visible upstream
  credits + in-flight credit returns + downstream occupancy (buffered or
  staged) + not-yet-accepted retransmission entries == VC depth;
* **buffer bounds** — no VC buffer, ejection queue or retransmission
  buffer ever exceeds its capacity;
* **holder consistency** — every held output VC refers to a real input
  VC whose allocation agrees;
* **flit conservation** — every injected flit is ejected, dropped, or
  findable exactly once inside the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.network import Network
from repro.noc.topology import OPPOSITE


class InvariantViolation(AssertionError):
    """A conservation law broke — the report names where."""


@dataclass
class ValidationReport:
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class NetworkValidator:
    """Audits a network's conservation laws."""

    def __init__(self, network: Network):
        self.net = network
        self.report = ValidationReport()

    # ------------------------------------------------------------------
    def check(self, raise_on_violation: bool = True) -> ValidationReport:
        self.report.checks += 1
        self._check_credit_conservation()
        self._check_buffer_bounds()
        self._check_holders()
        self._check_flit_conservation()
        if raise_on_violation and not self.report.ok:
            raise InvariantViolation("; ".join(self.report.violations[-5:]))
        return self.report

    def _fail(self, message: str) -> None:
        self.report.violations.append(message)

    # ------------------------------------------------------------------
    def _check_credit_conservation(self) -> None:
        net = self.net
        for key, link in net.links.items():
            out = net.output_port_of(key)
            receiver = net.receiver_of(key)
            in_port = net.routers[link.dst_router].inputs[OPPOSITE[key[1]]]
            for vc in range(net.cfg.num_vcs):
                visible = out.credits.available(vc)
                pending = sum(
                    1 for _, v in out.credits._pending if v == vc
                )
                store = receiver._staging[vc]
                expected = receiver._expected_seq[vc]
                # an entry's reserved slot becomes *occupancy* once the
                # downstream receiver accepts it (staged or delivered)
                unaccepted = sum(
                    1
                    for entry in out.retrans
                    if entry.out_vc == vc
                    and entry.vc_seq >= expected
                    and entry.vc_seq not in store
                )
                occupancy = in_port.vcs[vc].occupancy + len(store)
                total = visible + pending + unaccepted + occupancy
                if total != net.cfg.vc_depth:
                    self._fail(
                        f"credit conservation on link {key} vc {vc}: "
                        f"visible={visible} pending={pending} "
                        f"unaccepted={unaccepted} occupancy={occupancy} "
                        f"!= depth {net.cfg.vc_depth}"
                    )

    def _check_buffer_bounds(self) -> None:
        net = self.net
        for router in net.routers:
            for pkey, port in router.inputs.items():
                for vc_idx, vc in enumerate(port.vcs):
                    if vc.occupancy > vc.capacity:
                        self._fail(
                            f"router {router.id} input {pkey} vc {vc_idx} "
                            f"over capacity: {vc.occupancy}>{vc.capacity}"
                        )
            for direction, out in router.outputs.items():
                if out.retrans.occupancy > out.retrans.depth:
                    self._fail(
                        f"router {router.id} output {direction.name} "
                        "retransmission buffer over depth"
                    )
            for local, eject in router.ejects.items():
                if len(eject.queue) > eject.capacity:
                    self._fail(
                        f"router {router.id} eject {local} over capacity"
                    )

    def _check_holders(self) -> None:
        net = self.net
        for router in net.routers:
            for direction, out in router.outputs.items():
                for out_vc, holder in enumerate(out.holders):
                    if holder is None:
                        continue
                    in_key, vc_idx = holder
                    port = router.inputs.get(in_key)
                    if port is None:
                        self._fail(
                            f"router {router.id} output {direction.name} "
                            f"vc {out_vc} held by unknown port {in_key}"
                        )
                        continue
                    vc = port.vcs[vc_idx]
                    if vc.out_vc == out_vc:
                        continue  # active allocation agrees
                    # otherwise the held packet's tail must already have
                    # switched out and be awaiting its ACK in the
                    # retransmission buffer (the holder clears on tail
                    # ACK); the input VC may even have started a new
                    # packet on a different out VC by then
                    tail_pending = any(
                        entry.out_vc == out_vc and entry.flit.is_tail
                        for entry in out.retrans
                    )
                    if not tail_pending:
                        self._fail(
                            f"router {router.id}: holder mismatch on "
                            f"{direction.name} vc {out_vc}"
                        )

    def _check_flit_conservation(self) -> None:
        net = self.net
        ids: set[int] = set()
        for router in net.routers:
            for port in router.inputs.values():
                for vc in port.vcs:
                    ids.update(id(f) for f in vc.buffer)
            for out in router.outputs.values():
                ids.update(id(e.flit) for e in out.retrans)
            for eject in router.ejects.values():
                ids.update(id(f) for f in eject.queue)
        for key in net.links:
            receiver = net.receiver_of(key)
            for store in receiver._staging.values():
                ids.update(id(s.flit) for s in store.values())
        in_network = len(ids)
        accounted = (
            net.stats.flits_ejected + in_network + net.stats.dropped_flits
        )
        if accounted != net.stats.flits_injected:
            self._fail(
                f"flit conservation: injected={net.stats.flits_injected} "
                f"ejected={net.stats.flits_ejected} in_network={in_network} "
                f"dropped={net.stats.dropped_flits}"
            )
