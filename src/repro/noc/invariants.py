"""Runtime invariant checking for the simulator.

A :class:`NetworkValidator` audits a live network for the conservation
laws the microarchitecture must uphold no matter what faults or trojans
are active.  The test suite runs it inside fault-injection campaigns;
the sentinel (:mod:`repro.sim.sentinel`) runs it online inside
:class:`~repro.sim.engine.Simulation`; users can attach it while
debugging their own extensions::

    validator = NetworkValidator(net)
    for _ in range(1000):
        net.step()
        validator.check()   # raises InvariantViolation with a report

Checked invariant families (selectable via ``families``):

* ``credit`` — for every (link, VC): visible upstream credits +
  in-flight credit returns + downstream occupancy (buffered or staged)
  + not-yet-accepted retransmission entries == VC depth;
* ``buffer`` — no VC buffer, ejection queue or retransmission buffer
  ever exceeds its capacity;
* ``holder`` — every held output VC refers to a real input VC whose
  allocation agrees;
* ``flit`` — every injected flit is ejected, dropped, or findable
  exactly once inside the network.

The flit sweep supports two scopes.  ``"full"`` walks every router and
link.  ``"active"`` walks only the network's active sets — settled
components provably hold no flits (settlement requires empty VC
buffers, retransmission buffers, staging stores and eject queues), so
the two scopes agree whenever the active-set bookkeeping is intact.
``"active"`` is what keeps the online sentinel cheap on drain-heavy
traffic; code that mutates network state behind the engine's back must
call :meth:`~repro.noc.network.Network.wake_all` first or audit with
``"full"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.network import Network
from repro.noc.topology import OPPOSITE

#: every invariant family, in audit order
FAMILIES = ("credit", "buffer", "holder", "flit")


class InvariantViolation(RuntimeError):
    """A conservation law broke — the report names where.

    Deliberately a :class:`RuntimeError`, not an ``AssertionError``:
    stripped-assert interpreters (``python -O``) and broad
    ``pytest.raises(AssertionError)`` idioms must never swallow a real
    conservation failure.  The full :class:`ValidationReport` rides on
    the exception as ``report``.
    """

    def __init__(self, message: str, report: "ValidationReport | None" = None):
        super().__init__(message)
        self.report = report


@dataclass
class ValidationReport:
    """Accumulated audit outcome.

    Repeated *identical* violation messages are folded into
    ``duplicates`` (a validator polled in a loop over a broken network
    would otherwise grow its list without bound), and once
    ``max_violations`` distinct messages are listed further distinct
    ones only bump ``overflow``.
    """

    checks: int = 0
    violations: list[str] = field(default_factory=list)
    #: identical messages suppressed after their first occurrence
    duplicates: int = 0
    #: distinct messages dropped after the list hit ``max_violations``
    overflow: int = 0
    #: distinct-violation counts keyed by invariant family
    by_family: dict[str, int] = field(default_factory=dict)
    max_violations: int = 200
    _seen: set = field(default_factory=set, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_failures(self) -> int:
        """Every failed assertion ever observed, folded or not."""
        return len(self.violations) + self.duplicates + self.overflow

    def record(self, family: str, message: str) -> None:
        if message in self._seen:
            self.duplicates += 1
            return
        self._seen.add(message)
        self.by_family[family] = self.by_family.get(family, 0) + 1
        if len(self.violations) >= self.max_violations:
            self.overflow += 1
            return
        self.violations.append(message)


class NetworkValidator:
    """Audits a network's conservation laws.

    ``families`` selects which invariant families run (default: all);
    ``flit_scope`` picks the flit-conservation sweep (``"full"`` or
    ``"active"``, see the module docstring).
    """

    def __init__(
        self,
        network: Network,
        *,
        families: tuple = FAMILIES,
        flit_scope: str = "full",
        max_violations: int = 200,
    ):
        unknown = set(families) - set(FAMILIES)
        if unknown:
            raise ValueError(f"unknown invariant families: {sorted(unknown)}")
        if flit_scope not in ("full", "active"):
            raise ValueError(f"unknown flit_scope {flit_scope!r}")
        self.net = network
        self.families = tuple(families)
        self.flit_scope = flit_scope
        self.report = ValidationReport(max_violations=max_violations)

    # ------------------------------------------------------------------
    def check(self, raise_on_violation: bool = True) -> ValidationReport:
        self.report.checks += 1
        if "credit" in self.families:
            self._check_credit_conservation()
        if "buffer" in self.families:
            self._check_buffer_bounds()
        if "holder" in self.families:
            self._check_holders()
        if "flit" in self.families:
            self._check_flit_conservation()
        if raise_on_violation and not self.report.ok:
            raise InvariantViolation(
                "; ".join(self.report.violations[-5:]), self.report
            )
        return self.report

    def _fail(self, family: str, message: str) -> None:
        self.report.record(family, message)

    # ------------------------------------------------------------------
    def _check_credit_conservation(self) -> None:
        net = self.net
        for key, link in net.links.items():
            out = net.output_port_of(key)
            receiver = net.receiver_of(key)
            in_port = net.routers[link.dst_router].inputs[OPPOSITE[key[1]]]
            for vc in range(net.cfg.num_vcs):
                visible = out.credits.available(vc)
                pending = sum(
                    1 for _, v in out.credits._pending if v == vc
                )
                store = receiver._staging[vc]
                expected = receiver._expected_seq[vc]
                # an entry's reserved slot becomes *occupancy* once the
                # downstream receiver accepts it (staged or delivered)
                unaccepted = sum(
                    1
                    for entry in out.retrans
                    if entry.out_vc == vc
                    and entry.vc_seq >= expected
                    and entry.vc_seq not in store
                )
                occupancy = in_port.vcs[vc].occupancy + len(store)
                total = visible + pending + unaccepted + occupancy
                if total != net.cfg.vc_depth:
                    self._fail(
                        "credit",
                        f"credit conservation on link {key} vc {vc}: "
                        f"visible={visible} pending={pending} "
                        f"unaccepted={unaccepted} occupancy={occupancy} "
                        f"!= depth {net.cfg.vc_depth}",
                    )

    def _check_buffer_bounds(self) -> None:
        net = self.net
        for router in net.routers:
            for pkey, port in router.inputs.items():
                for vc_idx, vc in enumerate(port.vcs):
                    if vc.occupancy > vc.capacity:
                        self._fail(
                            "buffer",
                            f"router {router.id} input {pkey} vc {vc_idx} "
                            f"over capacity: {vc.occupancy}>{vc.capacity}",
                        )
            for direction, out in router.outputs.items():
                if out.retrans.occupancy > out.retrans.depth:
                    self._fail(
                        "buffer",
                        f"router {router.id} output {direction.name} "
                        "retransmission buffer over depth",
                    )
            for local, eject in router.ejects.items():
                if len(eject.queue) > eject.capacity:
                    self._fail(
                        "buffer",
                        f"router {router.id} eject {local} over capacity",
                    )

    def _check_holders(self) -> None:
        net = self.net
        for router in net.routers:
            for direction, out in router.outputs.items():
                for out_vc, holder in enumerate(out.holders):
                    if holder is None:
                        continue
                    in_key, vc_idx = holder
                    port = router.inputs.get(in_key)
                    if port is None:
                        self._fail(
                            "holder",
                            f"router {router.id} output {direction.name} "
                            f"vc {out_vc} held by unknown port {in_key}",
                        )
                        continue
                    vc = port.vcs[vc_idx]
                    if vc.out_vc == out_vc:
                        continue  # active allocation agrees
                    # otherwise the held packet's tail must already have
                    # switched out and be awaiting its ACK in the
                    # retransmission buffer (the holder clears on tail
                    # ACK); the input VC may even have started a new
                    # packet on a different out VC by then
                    tail_pending = any(
                        entry.out_vc == out_vc and entry.flit.is_tail
                        for entry in out.retrans
                    )
                    if not tail_pending:
                        self._fail(
                            "holder",
                            f"router {router.id}: holder mismatch on "
                            f"{direction.name} vc {out_vc}",
                        )

    def _flit_sweep_scope(self):
        """(routers, link_keys) the flit sweep must walk.

        In ``"active"`` scope on an active-set-stepped network the
        sweep is restricted to the active sets: a settled router/link
        holds no flits by the definition of settlement, so restricting
        the sweep cannot change the verdict.  Full-sweep networks keep
        their active sets maximal, so the scopes coincide there.
        """
        net = self.net
        if self.flit_scope == "active":
            active_r = net._active_routers
            active_l = net._active_links
            return (
                [r for r in net.routers if r.id in active_r],
                [k for k in net._link_keys if k in active_l],
            )
        return net.routers, net._link_keys

    def _check_flit_conservation(self) -> None:
        net = self.net
        routers, link_keys = self._flit_sweep_scope()
        ids: set[int] = set()
        for router in routers:
            for port in router.inputs.values():
                for vc in port.vcs:
                    ids.update(id(f) for f in vc.buffer)
            for out in router.outputs.values():
                ids.update(id(e.flit) for e in out.retrans)
            for eject in router.ejects.values():
                ids.update(id(f) for f in eject.queue)
        for key in link_keys:
            receiver = net.receiver_of(key)
            for store in receiver._staging.values():
                ids.update(id(s.flit) for s in store.values())
        in_network = len(ids)
        accounted = (
            net.stats.flits_ejected + in_network + net.stats.dropped_flits
        )
        if accounted != net.stats.flits_injected:
            self._fail(
                "flit",
                f"flit conservation: injected={net.stats.flits_injected} "
                f"ejected={net.stats.flits_ejected} in_network={in_network} "
                f"dropped={net.stats.dropped_flits}",
            )
