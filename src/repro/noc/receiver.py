"""Receive pipeline of a direction input port: ECC decode + ACK/NACK.

:class:`EccReceiver` is the baseline fault-tolerant receiver every NoC
in the paper has: SECDED decode, correct single faults, NACK
uncorrectable ones.  The mitigation's threat detector
(:class:`repro.core.mitigation.DetectingReceiver`) subclasses it to add
fault classification and L-Ob handling.

Accepted flits pass through a per-VC **resequencing stage** before they
are written into the VC buffers: selective-repeat retransmission lets a
younger flit cross the link while an older one is being retried (paper
Fig. 7: flit #3 passes the corrupted flit #2), so the receiver restores
per-VC order using the link-level ``vc_seq`` numbers.  Deobfuscation
penalties (1–3 cycles, paper §IV) are modelled as delayed release from
this stage, and a flit blocked on its scramble partner simply blocks
its VC — matching the walkthrough where flit #4 stalls behind the
scrambled flit (2+4).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.ecc import SECDED_72_64, DecodeResult, DecodeStatus, Secded
from repro.noc.flit import unpack_header
from repro.noc.link import AckMessage, Link, Transmission
from repro.noc.retrans import NackAdvice

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.config import NoCConfig
    from repro.noc.flit import Flit


class StagedFlit:
    """A flit accepted off the link but not yet written to its VC buffer."""

    __slots__ = ("flit", "vc", "vc_seq", "release_cycle", "waiting_for_tag",
                 "own_tag")

    def __init__(
        self,
        flit: "Flit",
        vc: int,
        vc_seq: int,
        release_cycle: Optional[int],
        waiting_for_tag: Optional[int] = None,
        own_tag: Optional[int] = None,
    ):
        self.flit = flit
        self.vc = vc
        self.vc_seq = vc_seq
        #: None while blocked on a scramble partner
        self.release_cycle = release_cycle
        self.waiting_for_tag = waiting_for_tag
        #: link tag of this flit (so a resolved waiter can itself feed
        #: scramble chains: its recovered data is cached under this tag)
        self.own_tag = own_tag


class EccReceiver:
    """Baseline switch-to-switch ECC receive pipeline."""

    def __init__(self, cfg: "NoCConfig", link: Link, codec: Secded = SECDED_72_64):
        self.cfg = cfg
        self.link = link
        self.codec = codec
        #: per-VC resequencing store: vc -> {vc_seq: StagedFlit}
        self._staging: dict[int, dict[int, StagedFlit]] = {
            vc: {} for vc in range(cfg.num_vcs)
        }
        #: next vc_seq expected to be delivered, per VC
        self._expected_seq = [0] * cfg.num_vcs
        # -- counters ----------------------------------------------------
        self.flits_accepted = 0
        self.flits_corrected = 0
        self.faults_detected = 0
        self.nacks_sent = 0
        self.deob_stall_cycles = 0

    # ------------------------------------------------------------------
    def process(self, tx: Transmission, cycle: int) -> None:
        """Handle one arriving transmission."""
        if tx.vc_seq in self._staging[tx.vc]:
            # Duplicate of a flit already accepted (a stale
            # retransmission); re-ACK and drop.
            self._send_ok(tx, cycle)
            return
        result = self.codec.decode(tx.codeword)
        if result.status is DecodeStatus.DETECTED:
            self._reject(tx, cycle, result)
        else:
            self._accept(tx, cycle, result)

    # -- reject path ------------------------------------------------------
    def _reject(self, tx: Transmission, cycle: int, result: DecodeResult) -> None:
        self.faults_detected += 1
        self.nacks_sent += 1
        advice = self._advice_for(tx, cycle, result)
        self.link.send_ack(
            AckMessage(tag=tx.tag, ok=False, advice=advice), cycle
        )

    def _advice_for(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> Optional[NackAdvice]:
        """Baseline receivers only ever ask for a plain retransmission."""
        return None

    # -- accept path --------------------------------------------------------
    def _accept(self, tx: Transmission, cycle: int, result: DecodeResult) -> None:
        if result.status is DecodeStatus.CORRECTED:
            self.flits_corrected += 1
        if tx.ob is not None:
            self._accept_obfuscated(tx, cycle, result)
            return
        self._deliver_plain(tx, cycle, result)

    def _deliver_plain(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> None:
        self._finalize_flit(tx.flit, result.data)
        self._stage(StagedFlit(tx.flit, tx.vc, tx.vc_seq, cycle))
        self._send_ok(tx, cycle)

    def _accept_obfuscated(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> None:
        """Baseline networks never launch obfuscated flits; receiving one
        without mitigation support is a protocol violation."""
        raise RuntimeError(
            "obfuscated transmission reached a receiver without a threat "
            "detector / L-Ob decoder; install mitigation on both ends"
        )

    def _send_ok(self, tx: Transmission, cycle: int) -> None:
        self.flits_accepted += 1
        self.link.send_ack(
            AckMessage(
                tag=tx.tag,
                ok=True,
                ob_success=tx.ob,
                flow_signature=tx.flit.flow_signature,
            ),
            cycle,
        )

    def _finalize_flit(self, flit: "Flit", data: int) -> None:
        """Adopt the decoded wire image; hardware trusts the wire, so
        silent data corruption on a head flit re-routes the packet."""
        flit.data = data
        if flit.is_head:
            fields = unpack_header(data)
            flit.src_router = fields["src_router"]
            flit.dst_router = fields["dst_router"]
            flit.mem_addr = fields["mem_addr"]

    # -- staging ----------------------------------------------------------
    def _stage(self, staged: StagedFlit) -> None:
        self._staging[staged.vc][staged.vc_seq] = staged

    def take_deliveries(self, cycle: int) -> list[tuple[int, "Flit"]]:
        """Flits ready to be written into the input VC buffers this
        cycle, strictly in per-VC ``vc_seq`` order."""
        out: list[tuple[int, "Flit"]] = []
        for vc, store in self._staging.items():
            while True:
                expected = self._expected_seq[vc]
                staged = store.get(expected)
                if staged is None:
                    break
                if staged.release_cycle is None or staged.release_cycle > cycle:
                    break
                del store[expected]
                self._expected_seq[vc] = expected + 1
                staged.flit.last_move_cycle = cycle
                staged.flit.hops += 1
                out.append((vc, staged.flit))
        return out

    @property
    def staged_count(self) -> int:
        return sum(len(store) for store in self._staging.values())

    @property
    def idle(self) -> bool:
        return self.staged_count == 0
