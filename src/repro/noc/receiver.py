"""Receive pipeline of a direction input port: ECC decode + ACK/NACK.

:class:`EccReceiver` is the baseline fault-tolerant receiver every NoC
in the paper has: SECDED decode, correct single faults, NACK
uncorrectable ones.  The mitigation's threat detector
(:class:`repro.core.mitigation.DetectingReceiver`) subclasses it to add
fault classification and L-Ob handling.

Accepted flits pass through a per-VC **resequencing stage** before they
are written into the VC buffers: selective-repeat retransmission lets a
younger flit cross the link while an older one is being retried (paper
Fig. 7: flit #3 passes the corrupted flit #2), so the receiver restores
per-VC order using the link-level ``vc_seq`` numbers.  Deobfuscation
penalties (1–3 cycles, paper §IV) are modelled as delayed release from
this stage, and a flit blocked on its scramble partner simply blocks
its VC — matching the walkthrough where flit #4 stalls behind the
scrambled flit (2+4).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.ecc import SECDED_72_64, DecodeResult, DecodeStatus, Secded
from repro.noc.flit import layout_for, unpack_header
from repro.noc.link import AckMessage, Link, Transmission
from repro.noc.retrans import NackAdvice

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.config import NoCConfig
    from repro.noc.flit import Flit


class StagedFlit:
    """A flit accepted off the link but not yet written to its VC buffer."""

    __slots__ = ("flit", "vc", "vc_seq", "release_cycle", "waiting_for_tag",
                 "own_tag", "discard")

    def __init__(
        self,
        flit: "Flit",
        vc: int,
        vc_seq: int,
        release_cycle: Optional[int],
        waiting_for_tag: Optional[int] = None,
        own_tag: Optional[int] = None,
        discard: bool = False,
    ):
        self.flit = flit
        self.vc = vc
        self.vc_seq = vc_seq
        #: None while blocked on a scramble partner
        self.release_cycle = release_cycle
        self.waiting_for_tag = waiting_for_tag
        #: link tag of this flit (so a resolved waiter can itself feed
        #: scramble chains: its recovered data is cached under this tag)
        self.own_tag = own_tag
        #: tombstone of a degraded packet: holds the slot for sequencing
        #: and credit accounting, but is consumed instead of delivered
        self.discard = discard


class EccReceiver:
    """Baseline switch-to-switch ECC receive pipeline."""

    def __init__(self, cfg: "NoCConfig", link: Link, codec: Secded = SECDED_72_64):
        self.cfg = cfg
        self.link = link
        self.codec = codec
        self.layout = layout_for(cfg)
        #: per-VC resequencing store: vc -> {vc_seq: StagedFlit}
        self._staging: dict[int, dict[int, StagedFlit]] = {
            vc: {} for vc in range(cfg.num_vcs)
        }
        #: next vc_seq expected to be delivered, per VC
        self._expected_seq = [0] * cfg.num_vcs
        #: vc_seq numbers dropped upstream before acceptance; the
        #: resequencer steps over them instead of waiting forever
        self._skipped: dict[int, set[int]] = {
            vc: set() for vc in range(cfg.num_vcs)
        }
        #: pkt_ids condemned by the degradation path; their remaining
        #: flits are accepted-and-discarded so the wormhole drains
        self.poisoned_packets: set[int] = set()
        self._poison_order: "deque[int]" = deque()
        #: wired by Network: upstream CreditTracker, for returning the
        #: slot of a discarded flit
        self.upstream_credits = None
        #: wired by Network: NetworkStats, for degrade drop accounting
        self.stats_sink = None
        # -- counters ----------------------------------------------------
        # .. deprecated:: read these through the metrics registry
        #    (``repro.obs.collectors.collect_links`` publishes them as
        #    ``ecc_*`` series); the raw attributes remain the mutation
        #    site but new consumers should use the registry snapshot.
        self.flits_accepted = 0
        self.flits_corrected = 0
        self.faults_detected = 0
        self.nacks_sent = 0
        self.deob_stall_cycles = 0
        self.flits_discarded = 0

    # ------------------------------------------------------------------
    def process(self, tx: Transmission, cycle: int) -> None:
        """Handle one arriving transmission."""
        if (
            tx.vc_seq in self._staging[tx.vc]
            or tx.vc_seq in self._skipped[tx.vc]
        ):
            # Duplicate of a flit already accepted (a stale
            # retransmission), or a sequence the upstream degradation
            # path already gave up on; re-ACK and drop.
            self._send_ok(tx, cycle)
            return
        result = self.codec.decode(tx.codeword)
        if result.status is DecodeStatus.DETECTED:
            self._reject(tx, cycle, result)
        elif tx.flit.pkt_id in self.poisoned_packets:
            self._discard(tx, cycle)
        else:
            self._accept(tx, cycle, result)

    # -- reject path ------------------------------------------------------
    def _reject(self, tx: Transmission, cycle: int, result: DecodeResult) -> None:
        self.faults_detected += 1
        self.nacks_sent += 1
        advice = self._advice_for(tx, cycle, result)
        self.link.send_ack(
            AckMessage(tag=tx.tag, ok=False, advice=advice), cycle
        )

    def _advice_for(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> Optional[NackAdvice]:
        """Baseline receivers only ever ask for a plain retransmission."""
        return None

    # -- accept path --------------------------------------------------------
    def _accept(self, tx: Transmission, cycle: int, result: DecodeResult) -> None:
        if result.status is DecodeStatus.CORRECTED:
            self.flits_corrected += 1
        if tx.ob is not None:
            self._accept_obfuscated(tx, cycle, result)
            return
        self._deliver_plain(tx, cycle, result)

    def _deliver_plain(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> None:
        self._finalize_flit(tx.flit, result.data)
        self._stage(StagedFlit(tx.flit, tx.vc, tx.vc_seq, cycle))
        self._send_ok(tx, cycle)

    def _accept_obfuscated(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> None:
        """Baseline networks never launch obfuscated flits; receiving one
        without mitigation support is a protocol violation."""
        raise RuntimeError(
            "obfuscated transmission reached a receiver without a threat "
            "detector / L-Ob decoder; install mitigation on both ends"
        )

    def _send_ok(self, tx: Transmission, cycle: int) -> None:
        self.flits_accepted += 1
        self.link.send_ack(
            AckMessage(
                tag=tx.tag,
                ok=True,
                ob_success=tx.ob,
                flow_signature=tx.flit.flow_signature,
            ),
            cycle,
        )

    def _finalize_flit(self, flit: "Flit", data: int) -> None:
        """Adopt the decoded wire image; hardware trusts the wire, so
        silent data corruption on a head flit re-routes the packet."""
        flit.data = data
        if flit.is_head:
            fields = unpack_header(data, self.layout)
            flit.src_router = fields["src_router"]
            flit.dst_router = fields["dst_router"]
            flit.mem_addr = fields["mem_addr"]

    # -- graceful degradation --------------------------------------------
    def _discard(self, tx: Transmission, cycle: int) -> None:
        """Accept-and-discard a flit of a condemned packet: the upstream
        slot is freed through the ordinary OK-ACK path, but a tombstone
        is staged in place of the flit so per-VC sequencing and credit
        accounting stay exact."""
        self._stage(StagedFlit(tx.flit, tx.vc, tx.vc_seq, cycle, discard=True))
        self._send_ok(tx, cycle)

    def skip_seq(self, vc: int, vc_seq: int) -> None:
        """Mark a sequence number the upstream end dropped before this
        receiver ever accepted it; the resequencer will step over it."""
        if vc_seq >= self._expected_seq[vc] and vc_seq not in self._staging[vc]:
            self._skipped[vc].add(vc_seq)

    def poison_packet(self, pkt_id: int, capacity: int = 256) -> None:
        """Condemn a packet: its future arrivals on this link are
        accepted-and-discarded (the end-to-end resubmission owns
        delivery from here on)."""
        if pkt_id in self.poisoned_packets:
            return
        self.poisoned_packets.add(pkt_id)
        self._poison_order.append(pkt_id)
        while len(self._poison_order) > capacity:
            self.poisoned_packets.discard(self._poison_order.popleft())

    def reset_sequencing(self) -> None:
        """Start a fresh link epoch after reinstatement.

        A sealed link retired its pinned retransmission entries without
        delivering them, so the upstream per-VC ``vc_seq`` counters and
        this receiver's ``_expected_seq`` have diverged — and the
        ``_skipped`` sets still hold sequence numbers from the sealed
        era, which would misclassify fresh post-reinstatement arrivals
        as stale duplicates (they are re-ACKed and silently dropped).
        Reinstatement re-zeroes both ends instead: legal exactly
        because sealing guaranteed the wire is idle, the
        retransmission buffer is empty and nothing is staged here, so
        no in-flight sequence number can straddle the reset.

        Poison tombstones are cleared for the same reason: packets
        purged while this link was condemned retired long ago (their
        resubmitted aliases carry fresh ids), so stale entries only
        risk eating a future wrapped pkt_id.
        """
        if self.staged_count:
            raise RuntimeError(
                "cannot reset sequencing with staged flits pending"
            )
        self._expected_seq = [0] * self.cfg.num_vcs
        for skipped in self._skipped.values():
            skipped.clear()
        self.poisoned_packets.clear()
        self._poison_order.clear()

    def discard_staged(self, pkt_id: int, cycle: int) -> int:
        """Turn already-staged (undelivered) flits of a condemned packet
        into tombstones; returns how many were condemned.  Flits blocked
        on a scramble partner are left alone — they resolve normally and
        their packet id is poisoned for ejection anyway."""
        count = 0
        for store in self._staging.values():
            for staged in store.values():
                if (
                    staged.flit.pkt_id == pkt_id
                    and not staged.discard
                    and staged.waiting_for_tag is None
                ):
                    staged.discard = True
                    count += 1
        return count

    # -- staging ----------------------------------------------------------
    def _stage(self, staged: StagedFlit) -> None:
        self._staging[staged.vc][staged.vc_seq] = staged

    def take_deliveries(self, cycle: int) -> list[tuple[int, "Flit"]]:
        """Flits ready to be written into the input VC buffers this
        cycle, strictly in per-VC ``vc_seq`` order."""
        out: list[tuple[int, "Flit"]] = []
        for vc, store in self._staging.items():
            skipped = self._skipped[vc]
            while True:
                expected = self._expected_seq[vc]
                if expected in skipped:
                    skipped.discard(expected)
                    self._expected_seq[vc] = expected + 1
                    continue
                staged = store.get(expected)
                if staged is None:
                    break
                if staged.release_cycle is None or staged.release_cycle > cycle:
                    break
                del store[expected]
                self._expected_seq[vc] = expected + 1
                if staged.discard:
                    # Tombstone consumed: the buffer slot it reserved is
                    # returned upstream exactly where a real delivery
                    # would have occupied it.
                    self.flits_discarded += 1
                    if self.upstream_credits is not None:
                        self.upstream_credits.release(vc, cycle)
                    if self.stats_sink is not None:
                        self.stats_sink.on_flit_degraded(staged.flit)
                    continue
                staged.flit.last_move_cycle = cycle
                staged.flit.hops += 1
                out.append((vc, staged.flit))
        return out

    @property
    def staged_count(self) -> int:
        return sum(len(store) for store in self._staging.values())

    @property
    def idle(self) -> bool:
        return self.staged_count == 0
