"""Per-output retransmission buffers (selective repeat).

The paper evaluates the worst-case microarchitecture where
retransmission buffers sit after the crossbar, before link traversal
(Fig. 5 / §V).  Each output port keeps the flits it has launched until
the downstream ECC acknowledges them; a NACK re-arms the entry for
another launch.  Delivery is *selective repeat*: in the Fig. 7
walkthrough flit #3 overtakes the corrupted flit #2 while #2 waits for
its retransmission slot.

A flit the trojan corrupts on every traversal therefore pins its slot
forever; once every slot is pinned the output port stalls — the seed of
the deadlock the attack farms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.flit import Flit


class EntryState(enum.Enum):
    READY = "ready"          # needs (re)transmission
    IN_FLIGHT = "in_flight"  # launched, awaiting ACK/NACK


@dataclass(slots=True)
class NackAdvice:
    """Obfuscation advice piggybacked on a NACK by the threat detector
    (the downstream router telling the upstream L-Ob what to try next)."""

    enable_obfuscation: bool = False
    #: index into the mitigation's obfuscation-method sequence
    method_index: int = 0


class RetransEntry:
    """One retransmission-buffer slot."""

    __slots__ = (
        "tag",
        "flit",
        "out_vc",
        "vc_seq",
        "state",
        "send_count",
        "admitted_cycle",
        "last_send_cycle",
        "ob_advice",
        "defer_until",
    )

    def __init__(self, tag: int, flit: "Flit", out_vc: int, cycle: int):
        self.tag = tag
        self.flit = flit
        self.out_vc = out_vc
        #: per-(link, VC) sequence number; the downstream resequencing
        #: stage delivers flits of a VC strictly in this order, so
        #: selective repeat cannot reorder flits within a packet
        self.vc_seq = -1
        self.state = EntryState.READY
        self.send_count = 0
        self.admitted_cycle = cycle
        self.last_send_cycle = -1
        #: advice from the last NACK; consumed by the L-Ob encoder
        self.ob_advice: Optional[NackAdvice] = None
        #: reorder obfuscation: do not launch before this cycle
        self.defer_until = -1

    def sendable(self, cycle: int) -> bool:
        return self.state is EntryState.READY and self.defer_until <= cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RetransEntry(tag={self.tag}, {self.state.value}, "
            f"sends={self.send_count}, flit={self.flit!r})"
        )


class RetransBuffer:
    """Selective-repeat retransmission buffer for one output port."""

    __slots__ = ("depth", "_entries", "_order", "_next_tag",
                 "acks_received", "nacks_received", "admitted_total",
                 "dropped_total")

    def __init__(self, depth: int):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._entries: dict[int, RetransEntry] = {}
        self._order: list[int] = []  # admission order, oldest first
        self._next_tag = 0
        self.acks_received = 0
        self.nacks_received = 0
        self.admitted_total = 0
        self.dropped_total = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def __iter__(self) -> Iterator[RetransEntry]:
        return (self._entries[tag] for tag in self._order)

    def get(self, tag: int) -> Optional[RetransEntry]:
        return self._entries.get(tag)

    # ------------------------------------------------------------------
    def admit(self, flit: "Flit", out_vc: int, cycle: int) -> Optional[int]:
        """Accept a flit from the crossbar; returns its link tag, or
        ``None`` when the buffer is full (the output port stalls)."""
        if self.is_full:
            return None
        tag = self._next_tag
        self._next_tag += 1
        entry = RetransEntry(tag, flit, out_vc, cycle)
        self._entries[tag] = entry
        self._order.append(tag)
        self.admitted_total += 1
        return tag

    def pick_ready(self, cycle: int) -> Optional[RetransEntry]:
        """Oldest entry eligible for (re)launch this cycle."""
        for tag in self._order:
            entry = self._entries[tag]
            if entry.sendable(cycle):
                return entry
        return None

    def ready_entries(self, cycle: int) -> list[RetransEntry]:
        """All launchable entries, oldest first (used by L-Ob to pick
        scramble partners and implement reordering)."""
        return [
            self._entries[tag]
            for tag in self._order
            if self._entries[tag].sendable(cycle)
        ]

    def mark_launched(self, tag: int, cycle: int) -> None:
        entry = self._entries[tag]
        if entry.state is not EntryState.READY:
            raise RuntimeError(f"launching tag {tag} twice")
        entry.state = EntryState.IN_FLIGHT
        entry.send_count += 1
        entry.last_send_cycle = cycle

    def on_ack(self, tag: int) -> Optional[RetransEntry]:
        """Positive acknowledgement: retire the entry, free the slot."""
        entry = self._entries.pop(tag, None)
        if entry is None:
            return None
        self._order.remove(tag)
        self.acks_received += 1
        return entry

    def on_nack(self, tag: int, advice: Optional[NackAdvice] = None) -> None:
        """Negative acknowledgement: re-arm for retransmission."""
        entry = self._entries.get(tag)
        if entry is None:
            return
        entry.state = EntryState.READY
        entry.flit.retransmissions += 1
        if advice is not None:
            entry.ob_advice = advice
        self.nacks_received += 1

    def drop(self, tag: int) -> Optional[RetransEntry]:
        """Forcibly retire an entry without an acknowledgement.

        This is the bounded-retry degradation path: the caller gives up
        on the flit, frees its slot, and takes responsibility for the
        downstream bookkeeping (sequence skip, credit return, end-to-end
        resubmission).  Only meaningful for ``READY`` entries — an
        ``IN_FLIGHT`` entry still has a transmission on the wire whose
        ACK/NACK must settle first.
        """
        entry = self._entries.pop(tag, None)
        if entry is None:
            return None
        if entry.state is not EntryState.READY:
            self._entries[tag] = entry
            raise RuntimeError(f"dropping in-flight tag {tag}")
        self._order.remove(tag)
        self.dropped_total += 1
        return entry

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle >= ``cycle`` this buffer may need service, or
        ``None`` when empty.

        A deferred READY entry sleeps until its ``defer_until`` (the
        watchdog-backoff window the event engine profitably skips); a
        launchable READY entry demands "now"; an IN_FLIGHT entry also
        demands "now" — its ACK/NACK timing is interlocked with the
        downstream receive pipeline, which is too entangled to prove
        idle cheaply, so the engine stays conservative.
        """
        best: Optional[int] = None
        for tag in self._order:
            entry = self._entries[tag]
            if entry.state is not EntryState.READY:
                return cycle
            when = entry.defer_until
            if when <= cycle:
                return cycle
            if best is None or when < best:
                best = when
        return best

    def oldest_wait(self, cycle: int) -> int:
        """Age in cycles of the oldest unretired entry (0 if empty) —
        a back-pressure signal used by deadlock monitors."""
        if not self._order:
            return 0
        return cycle - self._entries[self._order[0]].admitted_cycle
