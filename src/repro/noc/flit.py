"""Packets, flits and the 64-bit wire image.

The head flit's wire image packs exactly the fields the paper's TASP
trojan inspects, with the paper's widths (§V-A: src 4, dest 4, VC 2,
mem 32 — the 42-bit "full" target window), plus flit type and packet id
in the remaining bits::

    bit  0..3   source router        (4)
    bit  4..7   destination router   (4)
    bit  8..9   virtual channel      (2)
    bit 10..41  memory address       (32)
    bit 42..43  flit type            (2)
    bit 44..63  packet id low bits   (20)

Body/tail flits carry raw 64-bit payload words; a trojan performing deep
packet inspection reads the *same wire positions* and may therefore
mis-trigger on payload data — the "masking an unintended target" risk
the paper discusses.

Meshes beyond the paper's 16 routers do not fit 4-bit router ids; for
those a :class:`HeaderLayout` is derived per configuration
(:func:`layout_for`) with router-id fields just wide enough for the
mesh, the memory address kept at 32 bits, and the packet-id field
absorbing whatever is left.  ``layout_for`` of any <= 16-router mesh
returns :data:`PAPER_LAYOUT` — the exact constants above — so every
paper-scale wire image is bit-identical to what this module always
produced.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field

from repro.noc.config import NoCConfig
from repro.util.bits import extract_field, insert_field, mask


class FlitType(enum.IntEnum):
    HEAD = 0
    BODY = 1
    TAIL = 2
    #: single-flit packet: head and tail at once
    SINGLE = 3


# -- header field layout (bit offset, width) ---------------------------
SRC_FIELD = (0, 4)
DST_FIELD = (4, 4)
VC_FIELD = (8, 2)
MEM_FIELD = (10, 32)
TYPE_FIELD = (42, 2)
PID_FIELD = (44, 20)

#: offset/width of the paper's 42-bit "full" target window
FULL_WINDOW = (0, 42)
#: header half of the flit for L-Ob granularity purposes
HEADER_WINDOW = (0, 42)
#: payload half (type + pkt id bits for head flits; data for body flits)
PAYLOAD_WINDOW = (42, 22)


@dataclass(frozen=True)
class HeaderLayout:
    """Bit positions of every head-flit field on the wire.

    ``(offset, width)`` pairs, mirroring the module-level constants.
    ``full_window`` is the src+dst+vc+mem span the paper's "Full" TASP
    comparator taps; ``header_window``/``payload_window`` are the L-Ob
    granularity halves.
    """

    src: tuple[int, int]
    dst: tuple[int, int]
    vc: tuple[int, int]
    mem: tuple[int, int]
    ftype: tuple[int, int]
    pid: tuple[int, int]
    full_window: tuple[int, int]
    header_window: tuple[int, int]
    payload_window: tuple[int, int]

    @property
    def router_bits(self) -> int:
        return self.src[1]


#: the paper's §V-A layout (4-bit router ids, <= 16 routers)
PAPER_LAYOUT = HeaderLayout(
    src=SRC_FIELD,
    dst=DST_FIELD,
    vc=VC_FIELD,
    mem=MEM_FIELD,
    ftype=TYPE_FIELD,
    pid=PID_FIELD,
    full_window=FULL_WINDOW,
    header_window=HEADER_WINDOW,
    payload_window=PAYLOAD_WINDOW,
)


@functools.lru_cache(maxsize=None)
def _layout(num_routers: int, flit_bits: int) -> HeaderLayout:
    if num_routers <= 16 and flit_bits == 64:
        return PAPER_LAYOUT
    rb = max(4, (num_routers - 1).bit_length())
    type_off = 2 * rb + 34
    pid_off = type_off + 2
    if pid_off >= flit_bits:
        raise ValueError(
            f"{num_routers} routers need {rb}-bit ids; the header does "
            f"not fit a {flit_bits}-bit flit"
        )
    return HeaderLayout(
        src=(0, rb),
        dst=(rb, rb),
        vc=(2 * rb, 2),
        mem=(2 * rb + 2, 32),
        ftype=(type_off, 2),
        pid=(pid_off, flit_bits - pid_off),
        full_window=(0, type_off),
        header_window=(0, type_off),
        payload_window=(type_off, flit_bits - type_off),
    )


def layout_for(cfg: "NoCConfig") -> HeaderLayout:
    """The header layout ``cfg``'s wire images use.

    :data:`PAPER_LAYOUT` for any mesh of at most 16 routers (keeping
    every published figure's wire traffic bit-identical); a widened
    layout with ``(num_routers-1).bit_length()``-bit router ids beyond.
    """
    return _layout(cfg.num_routers, cfg.flit_bits)


def pack_header(
    src_router: int,
    dst_router: int,
    vc_class: int,
    mem_addr: int,
    ftype: FlitType,
    pkt_id: int,
    layout: HeaderLayout = PAPER_LAYOUT,
) -> int:
    """Build a head flit's wire image (64-bit at paper scale)."""
    word = 0
    word = insert_field(word, *layout.src, src_router)
    word = insert_field(word, *layout.dst, dst_router)
    word = insert_field(word, *layout.vc, vc_class)
    word = insert_field(word, *layout.mem, mem_addr & mask(layout.mem[1]))
    word = insert_field(word, *layout.ftype, int(ftype))
    word = insert_field(word, *layout.pid, pkt_id & mask(layout.pid[1]))
    return word


def unpack_header(
    word: int, layout: HeaderLayout = PAPER_LAYOUT
) -> dict[str, int]:
    """Decode the head-flit fields out of a wire image."""
    return {
        "src_router": extract_field(word, *layout.src),
        "dst_router": extract_field(word, *layout.dst),
        "vc_class": extract_field(word, *layout.vc),
        "mem_addr": extract_field(word, *layout.mem),
        "ftype": extract_field(word, *layout.ftype),
        "pkt_id": extract_field(word, *layout.pid),
    }


class Flit:
    """One flow-control unit.

    ``data`` is the authoritative wire image: fault injection,
    obfuscation and ECC act on (the codeword of) this value, and silent
    data corruption propagates through it realistically.  The remaining
    attributes are simulator bookkeeping (hardware would reconstruct
    them from the wire or from per-VC state).
    """

    __slots__ = (
        "pkt_id",
        "src_core",
        "dst_core",
        "src_router",
        "dst_router",
        "vc_class",
        "mem_addr",
        "ftype",
        "seq",
        "num_flits",
        "data",
        "injected_cycle",
        "ejected_cycle",
        "hops",
        "retransmissions",
        "last_move_cycle",
        "domain",
    )

    def __init__(
        self,
        pkt_id: int,
        src_core: int,
        dst_core: int,
        src_router: int,
        dst_router: int,
        vc_class: int,
        mem_addr: int,
        ftype: FlitType,
        seq: int,
        num_flits: int,
        data: int,
        domain: int = 0,
    ):
        self.pkt_id = pkt_id
        self.src_core = src_core
        self.dst_core = dst_core
        self.src_router = src_router
        self.dst_router = dst_router
        self.vc_class = vc_class
        self.mem_addr = mem_addr
        self.ftype = ftype
        self.seq = seq
        self.num_flits = num_flits
        self.data = data
        self.domain = domain
        self.injected_cycle = -1
        self.ejected_cycle = -1
        self.hops = 0
        self.retransmissions = 0
        self.last_move_cycle = -1

    @property
    def is_head(self) -> bool:
        return self.ftype in (FlitType.HEAD, FlitType.SINGLE)

    @property
    def is_tail(self) -> bool:
        return self.ftype in (FlitType.TAIL, FlitType.SINGLE)

    @property
    def flow_signature(self) -> tuple[int, int, int]:
        """(src router, dst router, vc) — the granularity at which L-Ob
        logs which obfuscation method worked (paper §IV-B)."""
        return (self.src_router, self.dst_router, self.vc_class)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flit(pkt={self.pkt_id}, {self.ftype.name}, seq={self.seq}, "
            f"{self.src_router}->{self.dst_router}, vc={self.vc_class})"
        )


@dataclass
class Packet:
    """A network packet, split into flits at injection.

    ``payload`` words fill the body/tail flits; a packet with no payload
    is a single head/tail flit (e.g. a read request).
    """

    pkt_id: int
    src_core: int
    dst_core: int
    vc_class: int = 0
    mem_addr: int = 0
    payload: list[int] = field(default_factory=list)
    created_cycle: int = 0
    domain: int = 0

    def num_flits(self) -> int:
        return 1 + len(self.payload)

    def build_flits(self, cfg: NoCConfig) -> list[Flit]:
        """Materialize the packet's flits (head first)."""
        if self.num_flits() > cfg.max_packet_flits:
            raise ValueError(
                f"packet of {self.num_flits()} flits exceeds "
                f"max_packet_flits={cfg.max_packet_flits}"
            )
        if not 0 <= self.vc_class < cfg.num_vcs:
            raise ValueError(f"vc_class {self.vc_class} out of range")
        src_router = cfg.router_of_core(self.src_core)
        dst_router = cfg.router_of_core(self.dst_core)
        total = self.num_flits()

        head_type = FlitType.SINGLE if total == 1 else FlitType.HEAD
        flits = [
            Flit(
                pkt_id=self.pkt_id,
                src_core=self.src_core,
                dst_core=self.dst_core,
                src_router=src_router,
                dst_router=dst_router,
                vc_class=self.vc_class,
                mem_addr=self.mem_addr,
                ftype=head_type,
                seq=0,
                num_flits=total,
                data=pack_header(
                    src_router,
                    dst_router,
                    self.vc_class,
                    self.mem_addr,
                    head_type,
                    self.pkt_id,
                    layout_for(cfg),
                ),
                domain=self.domain,
            )
        ]
        for i, word in enumerate(self.payload):
            ftype = FlitType.TAIL if i == len(self.payload) - 1 else FlitType.BODY
            flits.append(
                Flit(
                    pkt_id=self.pkt_id,
                    src_core=self.src_core,
                    dst_core=self.dst_core,
                    src_router=src_router,
                    dst_router=dst_router,
                    vc_class=self.vc_class,
                    mem_addr=self.mem_addr,
                    ftype=ftype,
                    seq=i + 1,
                    num_flits=total,
                    data=word & mask(cfg.flit_bits),
                    domain=self.domain,
                )
            )
        return flits
