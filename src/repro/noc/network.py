"""Top-level network: topology wiring and the cycle loop.

One :meth:`Network.step` call advances the whole NoC by one clock.
Phases run in sink-to-source order each cycle; per-flit/per-VC cycle
guards inside the router enforce the 5-stage pipeline timing, so the
ordering is about *consistency* (no flit is processed twice), not about
granting extra speed.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Callable, Optional

from repro.ecc import SECDED_72_64, Secded
from repro.noc.config import NoCConfig
from repro.noc.flit import Flit, Packet
from repro.noc.link import Link
from repro.noc.receiver import EccReceiver
from repro.noc.router import Router, SchedulingPolicy
from repro.noc.routing import TableRouting, make_route_fn
from repro.noc.stats import NetworkStats, PacketRecord, Sample
from repro.noc.topology import (
    Direction,
    LinkKey,
    OPPOSITE,
    all_links,
    link_endpoints,
)

#: Builds the receive pipeline for one direction input port.
ReceiverFactory = Callable[[NoCConfig, Link], EccReceiver]
#: Builds the (optional) L-Ob encoder for one direction output port.
LobFactory = Callable[[NoCConfig, Link], object]


class TrafficSource:
    """Protocol for traffic generators: called once per cycle."""

    def generate(self, cycle: int) -> list[Packet]:  # pragma: no cover
        raise NotImplementedError

    def done(self, cycle: int) -> bool:
        """True when the source will never emit again (drain checks)."""
        return False

    def next_active_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle >= ``cycle`` at which :meth:`generate` may
        emit packets, advance seeded RNG state, or flip :meth:`done` —
        ``None`` when the source is finished forever.

        The event engine (:mod:`repro.sim.sched`) skips the clock
        across cycles every source disclaims.  The default is maximally
        conservative: an unfinished source demands every cycle (which
        is also *exact* for the synthetic/app sources — they draw RNG
        per non-done cycle, so skipping any would desynchronize the
        stream).  Sources with known idle windows override this.
        """
        return None if self.done(cycle) else cycle


class Network:
    """A concentrated-mesh NoC instance."""

    def __init__(
        self,
        cfg: NoCConfig,
        *,
        policy: Optional[SchedulingPolicy] = None,
        receiver_factory: Optional[ReceiverFactory] = None,
        lob_factory: Optional[LobFactory] = None,
        routing_table: Optional[TableRouting] = None,
        e2e=None,
        codec: Secded = SECDED_72_64,
    ):
        self.cfg = cfg
        self.codec = codec
        self.policy = policy or SchedulingPolicy()
        self.e2e = e2e
        self.routing_table = routing_table
        self.route_fn = make_route_fn(cfg, routing_table)
        receiver_factory = receiver_factory or EccReceiver

        self.stats = NetworkStats()
        self.routers = [
            Router(cfg, rid, self.route_fn, self.policy)
            for rid in range(cfg.num_routers)
        ]
        self.links: dict[LinkKey, Link] = {}
        for key in all_links(cfg):
            src, dst = link_endpoints(cfg, key)
            link = Link(
                src, key[1], dst, cfg.link_latency, cfg.ack_latency
            )
            self.links[key] = link
            out_port = self.routers[src].add_link_output(key[1], link)
            in_port = self.routers[dst].add_link_input(OPPOSITE[key[1]])
            in_port.receiver = receiver_factory(cfg, link)
            in_port.receiver.upstream_credits = out_port.credits
            in_port.receiver.stats_sink = self.stats
            in_port.upstream_credits = out_port.credits
            if lob_factory is not None:
                out_port.lob = lob_factory(cfg, link)
        for router in self.routers:
            router.finish_wiring()

        # Active-set stepping bookkeeping.  Canonical iteration orders
        # are frozen at wiring time so the active-set path visits
        # components in exactly the full-sweep order.
        self._link_keys: list[LinkKey] = list(self.links)
        #: canonical position of each link key, so the active-set scan
        #: can sort a handful of live keys instead of filtering the
        #: full canonical list every cycle
        self._link_order: dict[LinkKey, int] = {
            key: index for index, key in enumerate(self._link_keys)
        }
        self._upstream_router: dict[tuple[int, Direction], int] = {}
        for key in self._link_keys:
            link = self.links[key]
            self._upstream_router[(link.dst_router, OPPOSITE[key[1]])] = (
                link.src_router
            )
        self._full_sweep = False
        self._active_routers: set[int] = set(range(cfg.num_routers))
        self._active_links: set[LinkKey] = set(self._link_keys)

        self._backlogs: list[deque[Flit]] = [
            deque() for _ in range(cfg.num_cores)
        ]
        #: cores with a non-empty backlog (kept exact by add_packet and
        #: _inject), so injection and idleness checks cost O(pending)
        self._backlogged: set[int] = set()
        self.cycle = 0
        self.traffic: Optional[TrafficSource] = None
        self.sample_interval = 10
        #: phase wall-clock attribution (repro.obs.profiler); None (the
        #: default) costs one identity test per phase per cycle
        self.profiler = None
        #: invoked with (flit, cycle, core) on every ejection
        self.ejection_hooks: list[Callable] = []
        #: invoked with (flit, cycle) on every injection (BW entry)
        self.injection_hooks: list[Callable] = []
        #: per-cycle observers (e.g. the resilience watchdog); each is
        #: called as ``monitor.on_cycle(network, cycle)`` at end of step
        self.monitors: list = []

    # -- measurement cadence -------------------------------------------------
    @property
    def sample_interval(self) -> int:
        """Back-pressure sampling cadence in cycles (0 disables
        sampling entirely — the zero-allocation path: no Sample is ever
        constructed).  The cadence is mirrored onto
        ``stats.samples.interval`` so archived series are
        self-describing."""
        return self._sample_interval

    @sample_interval.setter
    def sample_interval(self, value: int) -> None:
        self._sample_interval = value
        self.stats.samples.interval = value or None

    # -- active-set stepping -------------------------------------------------
    @property
    def full_sweep(self) -> bool:
        """When True, :meth:`step` walks every router and link each
        cycle (the historical behaviour).  When False (the default),
        settled components are skipped and woken on activity; the two
        modes produce bit-identical :class:`NetworkStats`."""
        return self._full_sweep

    @full_sweep.setter
    def full_sweep(self, value: bool) -> None:
        value = bool(value)
        if self._full_sweep and not value:
            # The active sets are not maintained while sweeping fully;
            # re-arm everything before switching back.
            self._active_routers = set(range(self.cfg.num_routers))
            self._active_links = set(self._link_keys)
        self._full_sweep = value

    def wake_router(self, router_id: int) -> None:
        """Mark a router active so the next :meth:`step` visits it.

        External code that mutates router state outside the cycle loop
        (tests, custom monitors) should call this; the built-in phases
        wake components themselves."""
        self._active_routers.add(router_id)

    def wake_all(self) -> None:
        """Re-activate every router and link (e.g. after bulk external
        mutation of network state)."""
        self._active_routers = set(range(self.cfg.num_routers))
        self._active_links = set(self._link_keys)

    def _router_settled(self, router: Router) -> bool:
        """True when the router holds no state requiring cycle work."""
        for port in router.inputs.values():
            if port.occupancy:
                return False
            receiver = port.receiver
            if receiver is not None and receiver.staged_count:
                return False
        for out in router.outputs.values():
            if not out.retrans.is_empty:
                return False
            if not out.link.idle:
                return False
            if out.credits.in_flight:
                return False
        for eject in router.ejects.values():
            if eject.queue:
                return False
        return True

    @property
    def quiescent(self) -> bool:
        """No component holds work: the active sets and injection
        backlogs are empty (only meaningful with active-set stepping —
        a full sweep maintains no sets, so it is never quiescent).

        The sets are pruned exactly at the end of every step, so
        quiescence is the O(1) form of "drained except for traffic yet
        to come and credit returns still in flight"."""
        return not (
            self._full_sweep
            or self._active_routers
            or self._active_links
            or self._backlogged
        )

    def next_event_cycle(self) -> Optional[int]:
        """Earliest cycle >= the current clock at which any tracked
        component has pending work, or ``None`` when every component is
        idle.  Consulted by the event engine (:mod:`repro.sim.sched`)
        before skipping the clock; a full sweep pins every cycle.

        Iterating the active *sets* here is deterministic even though
        set order is not: a minimum is order-independent, and the
        early exit returns the same ``cycle`` whichever member
        triggers it.
        """
        cycle = self.cycle
        if self._full_sweep or self._backlogged:
            return cycle
        best: Optional[int] = None
        for rid in self._active_routers:
            when = self.routers[rid].next_event_cycle(cycle)
            if when is not None:
                if when <= cycle:
                    return cycle
                if best is None or when < best:
                    best = when
        for key in self._active_links:
            when = self.links[key].next_event_cycle()
            if when is not None:
                if when <= cycle:
                    return cycle
                if best is None or when < best:
                    best = when
        return best

    # -- wiring helpers ------------------------------------------------------
    def attach_tamperer(self, key: LinkKey, tamperer) -> None:
        """Attach a fault model or trojan to a link."""
        self.links[key].tamperers.append(tamperer)

    def set_route_fn(self, fn) -> None:
        self.route_fn = fn
        for router in self.routers:
            router.route_fn = fn

    def disable_link(self, key: LinkKey) -> None:
        """Take a link out of service (rerouting mitigation).

        Intended for *static* fault configurations set up before traffic
        runs (the Fig. 10 infected-link sweeps).  Any flits already
        pinned in the retransmission buffer are dropped and counted —
        the price of disabling hardware mid-flight.
        """
        link = self.links[key]
        link.disabled = True
        out = self.routers[key[0]].outputs[key[1]]
        dropped = out.retrans.occupancy
        if dropped:
            self.stats.dropped_flits += dropped
            for entry in list(out.retrans):
                out.retrans.on_ack(entry.tag)
        out.holders = [None] * self.cfg.num_vcs
        out.holder_pkts = [None] * self.cfg.num_vcs

    def reinstate_link(self, key: LinkKey) -> None:
        """Return a sealed link to service (probation recovery).

        The inverse of :meth:`disable_link`, with the same invariant
        discipline run in reverse: it is only legal while the link
        holds no protocol state — which sealing already guaranteed and
        this method re-checks.  Both ends' per-VC sequence state is
        re-zeroed as one atomic epoch change (``disable_link`` retires
        pinned entries without ``skip_seq``, so the old counters have
        diverged), and the receiver's skip/poison tombstones from the
        condemned era are cleared so fresh deliveries are not
        misclassified as stale duplicates.
        """
        link = self.links[key]
        if not link.disabled:
            raise RuntimeError(f"link {key} is not disabled")
        out = self.output_port_of(key)
        if not out.retrans.is_empty or not link.idle:
            raise RuntimeError(
                f"link {key} still holds protocol state; reinstate only "
                "a sealed link"
            )
        receiver = self.receiver_of(key)
        receiver.reset_sequencing()
        out.vc_seq_counters = [0] * self.cfg.num_vcs
        link.disabled = False
        # Allocation skipped this output while it was disabled; wake
        # everything so stalled heads re-arbitrate from live state.
        self.wake_all()

    def purge_packet(self, pkt_id: int, cycle: int) -> int:
        """Flush every in-network trace of a condemned packet.

        Dropping a packet at one port cuts its wormhole mid-flight:
        flits that already crossed the drop point keep flowing with no
        tail behind them, so the VC holders they pinned at downstream
        outputs would never be released — a handful of drops can wedge
        the whole mesh.  This models the control-plane flush a
        fault-tolerant NoC broadcasts alongside the drop notification:
        buffered flits of the packet are discarded with exact credit
        and sequence accounting, its VC grants and pinned route state
        are force-released, and every receiver is poisoned so in-flight
        stragglers retire through the accept-and-discard path.

        Returns the number of buffered/pinned flits purged.
        """
        from repro.noc.retrans import EntryState

        purged = 0
        for router in self.routers:
            for key, port in router.inputs.items():
                for vc_idx, vc in enumerate(port.vcs):
                    doomed = [f for f in vc.buffer if f.pkt_id == pkt_id]
                    if doomed:
                        vc.buffer = deque(
                            f for f in vc.buffer if f.pkt_id != pkt_id
                        )
                        for flit in doomed:
                            self.stats.on_flit_degraded(flit)
                            # the freed slot's credit goes back upstream
                            if port.upstream_credits is not None:
                                port.upstream_credits.release(vc_idx, cycle)
                        purged += len(doomed)
                    if vc.cur_pkt == pkt_id:
                        vc.reset_packet_state()
            for out in router.outputs.values():
                receiver = self.receiver_of(out.link.key)
                for entry in list(out.retrans):
                    if (
                        entry.flit.pkt_id != pkt_id
                        or entry.state is not EntryState.READY
                    ):
                        # launched entries retire via the poisoned
                        # receiver's OK-ACK
                        continue
                    out.retrans.drop(entry.tag)
                    if entry.vc_seq >= 0:
                        receiver.skip_seq(entry.out_vc, entry.vc_seq)
                    out.credits.release(entry.out_vc, cycle)
                    self.stats.on_flit_degraded(entry.flit)
                    purged += 1
                for v in range(self.cfg.num_vcs):
                    if out.holder_pkts[v] == pkt_id:
                        out.holders[v] = None
                        out.holder_pkts[v] = None
                receiver.poison_packet(pkt_id)
        self.wake_all()
        return purged

    def receiver_of(self, key: LinkKey) -> EccReceiver:
        """The receive pipeline at the downstream end of ``key``."""
        link = self.links[key]
        return self.routers[link.dst_router].inputs[
            OPPOSITE[key[1]]
        ].receiver

    def output_port_of(self, key: LinkKey):
        return self.routers[key[0]].outputs[key[1]]

    # -- traffic --------------------------------------------------------------
    def set_traffic(self, source: TrafficSource) -> None:
        self.traffic = source

    def add_packet(self, packet: Packet) -> None:
        """Queue a packet at its source core's network interface."""
        if self.e2e is not None and hasattr(self.e2e, "prepare_packet"):
            self.e2e.prepare_packet(packet)
        flits = packet.build_flits(self.cfg)
        if self.e2e is not None:
            for flit in flits:
                self.e2e.encode_flit(flit)
        record = PacketRecord(
            pkt_id=packet.pkt_id,
            src_core=packet.src_core,
            dst_core=packet.dst_core,
            num_flits=packet.num_flits(),
            created_cycle=packet.created_cycle,
        )
        self.stats.on_packet_created(record)
        self._backlogs[packet.src_core].extend(flits)
        self._backlogged.add(packet.src_core)

    def backlog_depth(self, core: int) -> int:
        return len(self._backlogs[core])

    # -- cycle loop -------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        prof = self.profiler
        _t = perf_counter() if prof is not None else 0.0

        if self.traffic is not None:
            for packet in self.traffic.generate(cycle):
                self.add_packet(packet)
        if prof is not None:
            _t = prof.lap("traffic", _t)

        full = self._full_sweep
        if full:
            routers = self.routers
            link_keys = self._link_keys
        else:
            # Snapshot in canonical (full-sweep) order.  Routers woken
            # during this cycle join from the next step; per-flit cycle
            # guards make every phase a no-op for freshly arrived state
            # anyway, so the timing matches the full sweep exactly.
            # Router ids ARE their canonical positions and link keys
            # sort by their wiring-time index, so sorting the live sets
            # costs O(active log active) instead of an O(mesh) filter.
            all_routers = self.routers
            routers = [all_routers[rid] for rid in sorted(self._active_routers)]
            link_keys = sorted(
                self._active_links, key=self._link_order.__getitem__
            )

        # Credit returns become visible.
        for router in routers:
            for out in router.outputs.values():
                out.credits.tick(cycle)
        if prof is not None:
            _t = prof.lap("credit", _t)

        # ACK/NACK processing (reverse wires).
        for router in routers:
            router.process_acks(cycle)
        if prof is not None:
            _t = prof.lap("ack", _t)

        # Link arrivals -> receive pipeline (ECC + detection).
        for key in link_keys:
            link = self.links[key]
            arrivals = link.pop_arrivals(cycle)
            if not arrivals:
                continue
            receiver = self.receiver_of(key)
            for tx in arrivals:
                receiver.process(tx, cycle)
            self._active_routers.add(link.dst_router)

        # Staged flits drop into their VC buffers.
        for key in link_keys:
            link = self.links[key]
            receiver = self.receiver_of(key)
            in_port = self.routers[link.dst_router].inputs[OPPOSITE[key[1]]]
            discarded_before = receiver.flits_discarded
            deliveries = receiver.take_deliveries(cycle)
            for vc, flit in deliveries:
                in_port.vcs[vc].push(flit)
            if deliveries:
                self._active_routers.add(link.dst_router)
            if receiver.flits_discarded != discarded_before:
                # Consuming a tombstone released an upstream credit.
                self._active_routers.add(link.src_router)
        if prof is not None:
            _t = prof.lap("ecc", _t)

        # Ejection: cores consume.
        for router in routers:
            for flit in router.drain_ejects(cycle):
                core = router.ejects[
                    flit.dst_core % self.cfg.concentration
                ].core
                if self.e2e is not None:
                    self.e2e.decode_flit(flit, cycle, core)
                self.stats.on_flit_ejected(flit, cycle, core)
                for hook in self.ejection_hooks:
                    hook(flit, cycle, core)
        if prof is not None:
            _t = prof.lap("eject", _t)

        # LT launch, ST, VA, RC.
        for router in routers:
            router.launch_links(cycle, self.codec)
        for router in routers:
            router.switch_traverse(cycle)
            for direction in router.credit_release_dirs:
                self._active_routers.add(
                    self._upstream_router[(router.id, direction)]
                )
        if prof is not None:
            _t = prof.lap("traverse", _t)
        for router in routers:
            router.vc_allocate(cycle)
        if prof is not None:
            _t = prof.lap("arbitrate", _t)
        for router in routers:
            router.route_compute(cycle)
        if prof is not None:
            _t = prof.lap("route", _t)

        # Injection: one flit per core per cycle.
        self._inject(cycle)
        if prof is not None:
            _t = prof.lap("inject", _t)

        # Per-cycle observers (resilience watchdog etc.) see the fully
        # settled cycle state.
        if prof is None:
            for monitor in self.monitors:
                monitor.on_cycle(self, cycle)
        else:
            # monitors declaring ``profile_phase`` (the detector) get
            # their own lap; the rest stay pooled under "defense"
            for monitor in self.monitors:
                monitor.on_cycle(self, cycle)
                _t = prof.lap(
                    getattr(monitor, "profile_phase", "defense"), _t
                )
            _t = prof.lap("defense", _t)

        interval = self._sample_interval
        if interval and cycle % interval == 0:
            self.collect_sample()
        if prof is not None:
            _t = prof.lap("sample", _t)

        self.cycle = cycle + 1

        if not full:
            # Newly launched transmissions put their links in play.
            for router in routers:
                for out in router.outputs.values():
                    if not out.link.idle:
                        self._active_links.add(out.link.key)
            # Lazy prune: drop whatever settled this cycle.  Iterating
            # the sets themselves (instead of the full canonical lists)
            # keeps the prune O(active); membership results are
            # identical and set-build order is irrelevant.
            self._active_links = {
                key
                for key in self._active_links
                if not self.links[key].idle
                or self.receiver_of(key).staged_count
            }
            self._active_routers = {
                rid
                for rid in self._active_routers
                if not self._router_settled(self.routers[rid])
            }
        if prof is not None:
            prof.lap("active", _t)

    def _inject(self, cycle: int) -> None:
        if not self._backlogged:
            return
        cfg = self.cfg
        # sorted() both fixes the visitation order (ascending core, the
        # full-scan order) and snapshots the set before mutation
        for core in sorted(self._backlogged):
            backlog = self._backlogs[core]
            flit = backlog[0]
            if not self.policy.may_inject(flit, cycle):
                continue
            router = self.routers[cfg.router_of_core(core)]
            port = router.inputs[("inj", cfg.local_index(core))]
            vc = port.vcs[flit.vc_class]
            if vc.is_full:
                continue
            backlog.popleft()
            if not backlog:
                self._backlogged.discard(core)
            flit.injected_cycle = cycle
            flit.last_move_cycle = cycle
            vc.push(flit)
            self._active_routers.add(router.id)
            self.stats.on_flit_injected(flit, cycle)
            for hook in self.injection_hooks:
                hook(flit, cycle)

    # -- measurement --------------------------------------------------------
    def core_blocked(self, core: int) -> bool:
        """The core cannot inject: pending traffic faces a full VC."""
        backlog = self._backlogs[core]
        if not backlog:
            return False
        cfg = self.cfg
        router = self.routers[cfg.router_of_core(core)]
        port = router.inputs[("inj", cfg.local_index(core))]
        return port.vcs[backlog[0].vc_class].is_full

    def collect_sample(self) -> Sample:
        cfg = self.cfg
        input_util = sum(r.link_input_occupancy() for r in self.routers)
        output_util = sum(r.output_occupancy() for r in self.routers)
        injection_util = sum(r.injection_occupancy() for r in self.routers)
        blocked = sum(
            1 for r in self.routers if r.any_output_blocked(self.cycle)
        )
        all_full = 0
        half_full = 0
        for rid in range(cfg.num_routers):
            cores = [
                cfg.core_of(rid, local) for local in range(cfg.concentration)
            ]
            full = sum(1 for c in cores if self.core_blocked(c))
            if full == cfg.concentration:
                all_full += 1
            if full > cfg.concentration / 2:
                half_full += 1
        sample = Sample(
            cycle=self.cycle,
            input_utilization=input_util,
            output_utilization=output_util,
            injection_utilization=injection_util,
            routers_with_blocked_port=blocked,
            routers_all_cores_full=all_full,
            routers_half_cores_full=half_full,
        )
        self.stats.samples.append(sample)
        return sample

    # -- run helpers ------------------------------------------------------------
    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    @property
    def drained(self) -> bool:
        """No traffic anywhere in the NoC."""
        if any(self._backlogs):
            return False
        if self.traffic is not None and not self.traffic.done(self.cycle):
            return False
        for router in self.routers:
            if any(p.occupancy for p in router.inputs.values()):
                return False
            if any(not o.retrans.is_empty for o in router.outputs.values()):
                return False
            if any(e.queue for e in router.ejects.values()):
                return False
            for key, port in router.inputs.items():
                if port.receiver is not None and port.receiver.staged_count:
                    return False
        return all(link.idle for link in self.links.values())

    def run_until_drained(
        self, max_cycles: int, stall_limit: Optional[int] = None
    ) -> bool:
        """Run until all traffic is delivered.

        Returns True on drain; False when ``max_cycles`` elapsed or the
        network made no delivery for ``stall_limit`` cycles (deadlock).
        """
        for _ in range(max_cycles):
            if self.drained:
                return True
            self.step()
            if (
                stall_limit is not None
                and self.stats.stalled_for(self.cycle) > stall_limit
            ):
                return False
        return self.drained

    def link_load(self) -> dict[LinkKey, int]:
        """Traversal counts per link (paper Fig. 1c)."""
        return {key: link.traversals for key, link in self.links.items()}
