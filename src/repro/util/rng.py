"""Deterministic random streams.

Every stochastic component in the simulator (traffic generators, transient
fault processes, obfuscation key schedules) draws from its own
:class:`SeededStream`, derived from a single experiment seed plus a string
label.  Two runs with the same top-level seed are bit-for-bit identical
regardless of the order in which components happen to draw.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def derive_seed(root: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``root`` and a label path.

    Uses BLAKE2b so that nearby roots/labels do not produce correlated
    child streams (a classic pitfall of ``root + hash(label)`` schemes).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"/")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest(), "little") & _MASK64


class SeededStream:
    """A labelled, reproducible random stream.

    Thin wrapper over :class:`random.Random` with a few helpers for the
    integer-heavy draws the simulator makes.
    """

    __slots__ = ("seed", "_rng")

    def __init__(self, root: int, *labels: object):
        self.seed = derive_seed(root, *labels)
        self._rng = random.Random(self.seed)

    def child(self, *labels: object) -> "SeededStream":
        """Derive a sub-stream; independent of draws made on this one."""
        return SeededStream(self.seed, *labels)

    # -- state capture --------------------------------------------------
    def getstate(self) -> tuple:
        """The stream's exact position, as an opaque picklable value.

        Together with :meth:`setstate` this makes every stochastic
        component checkpointable: restoring the state replays the very
        next draw bit-for-bit (simulation snapshots and replay tooling
        both rest on this).
        """
        return self._rng.getstate()

    def setstate(self, state: tuple) -> None:
        """Rewind/advance the stream to a :meth:`getstate` capture."""
        self._rng.setstate(state)

    # -- draws ----------------------------------------------------------
    def bits(self, width: int) -> int:
        """A uniform ``width``-bit integer."""
        return self._rng.getrandbits(width) if width > 0 else 0

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._rng.choices(items, weights=weights, k=1)[0]

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def geometric(self, p: float) -> int:
        """Number of trials until first success (support ``1, 2, ...``)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        count = 1
        while not self.chance(p):
            count += 1
        return count

    def pick_distinct_pairs(self, width: int, count: int) -> list[int]:
        """``count`` distinct two-hot masks over ``width`` bits."""
        seen: set[int] = set()
        out: list[int] = []
        while len(out) < count:
            a = self.randint(0, width - 1)
            b = self.randint(0, width - 1)
            if a == b:
                continue
            m = (1 << a) | (1 << b)
            if m not in seen:
                seen.add(m)
                out.append(m)
        return out


def spread(total: float, weights: Iterable[float]) -> list[float]:
    """Split ``total`` proportionally to ``weights`` (used by traffic
    profile builders)."""
    ws = list(weights)
    s = sum(ws)
    if s <= 0:
        raise ValueError("weights must sum to a positive value")
    return [total * w / s for w in ws]
