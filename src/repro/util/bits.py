"""Bit-twiddling helpers over arbitrary-width Python integers.

Everything in the simulator that models hardware datapaths (flit wire
images, ECC codewords, trojan payload masks, obfuscation transforms)
operates on plain Python integers, which makes XOR-style fault injection
and parity computation both exact and fast (``int.bit_count`` is a single
C call).
"""

from __future__ import annotations

from typing import Sequence


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> hex(mask(8))
    '0xff'
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(index: int) -> int:
    """Return an integer with only bit ``index`` set."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return 1 << index


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (must be non-negative)."""
    if value < 0:
        raise ValueError("popcount of a negative value is undefined here")
    return value.bit_count()


def parity(value: int) -> int:
    """Even/odd parity of ``value``: 1 if an odd number of bits are set."""
    return value.bit_count() & 1


def extract_field(word: int, offset: int, width: int) -> int:
    """Extract ``width`` bits of ``word`` starting at bit ``offset``."""
    return (word >> offset) & mask(width)


def insert_field(word: int, offset: int, width: int, value: int) -> int:
    """Return ``word`` with the ``width``-bit field at ``offset`` replaced
    by ``value`` (which must fit in the field)."""
    if value < 0 or value > mask(width):
        raise ValueError(
            f"value {value:#x} does not fit in a {width}-bit field"
        )
    cleared = word & ~(mask(width) << offset)
    return cleared | (value << offset)


def rotl(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` within a ``width``-bit word."""
    if width <= 0:
        raise ValueError("rotation width must be positive")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotr(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` right by ``amount`` within a ``width``-bit word."""
    if width <= 0:
        raise ValueError("rotation width must be positive")
    return rotl(value, width - (amount % width), width)


class BitPermutation:
    """A fixed permutation of the bits of a ``width``-bit word.

    The permutation is applied with per-byte lookup tables (built once at
    construction), so ``apply`` costs ``ceil(width / 8)`` table lookups
    instead of ``width`` single-bit moves.  This is the workhorse behind
    the L-Ob *shuffle* obfuscation method.

    Parameters
    ----------
    permutation:
        ``permutation[i]`` is the destination bit index of source bit ``i``.
        Must be a permutation of ``range(width)``.
    """

    __slots__ = ("width", "_perm", "_inv", "_fwd_tables", "_inv_tables")

    def __init__(self, permutation: Sequence[int]):
        width = len(permutation)
        if sorted(permutation) != list(range(width)):
            raise ValueError("not a permutation of range(width)")
        self.width = width
        self._perm = tuple(permutation)
        inv = [0] * width
        for src, dst in enumerate(permutation):
            inv[dst] = src
        self._inv = tuple(inv)
        self._fwd_tables = self._build_tables(self._perm)
        self._inv_tables = self._build_tables(self._inv)

    @staticmethod
    def _build_tables(perm: Sequence[int]) -> list[list[int]]:
        width = len(perm)
        nbytes = (width + 7) // 8
        tables: list[list[int]] = []
        for byte_idx in range(nbytes):
            table = [0] * 256
            base = byte_idx * 8
            for value in range(256):
                scattered = 0
                bits_in_byte = min(8, width - base)
                for j in range(bits_in_byte):
                    if value >> j & 1:
                        scattered |= 1 << perm[base + j]
                table[value] = scattered
            tables.append(table)
        return tables

    @staticmethod
    def _apply_tables(tables: list[list[int]], value: int) -> int:
        out = 0
        for table in tables:
            out |= table[value & 0xFF]
            value >>= 8
        return out

    def apply(self, value: int) -> int:
        """Permute the bits of ``value`` forward."""
        return self._apply_tables(self._fwd_tables, value)

    def invert(self, value: int) -> int:
        """Undo :meth:`apply`."""
        return self._apply_tables(self._inv_tables, value)

    @classmethod
    def identity(cls, width: int) -> "BitPermutation":
        return cls(list(range(width)))

    @classmethod
    def rotation(cls, width: int, amount: int) -> "BitPermutation":
        """Permutation equivalent to ``rotl(value, amount, width)``."""
        return cls([(i + amount) % width for i in range(width)])

    @classmethod
    def from_seed(cls, width: int, seed: int) -> "BitPermutation":
        """A pseudo-random permutation derived deterministically from
        ``seed`` (Fisher-Yates with a local PRNG)."""
        import random

        order = list(range(width))
        random.Random(seed).shuffle(order)
        return cls(order)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitPermutation) and self._perm == other._perm
        )

    def __hash__(self) -> int:
        return hash(self._perm)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitPermutation(width={self.width})"


def two_hot_masks(width: int) -> list[int]:
    """All ``width``-bit values with exactly two bits set, in a canonical
    (lexicographic by bit pair) order.

    These are the payload patterns a SECDED-aware trojan cycles through:
    each injects exactly two faults, which SECDED detects but cannot
    correct.
    """
    masks: list[int] = []
    for low in range(width):
        for high in range(low + 1, width):
            masks.append((1 << low) | (1 << high))
    return masks
