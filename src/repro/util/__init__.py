"""Low-level utilities shared across the reproduction.

Submodules
----------
bits
    Bit-twiddling helpers over Python integers (parity, masks, rotations,
    table-accelerated bit permutations).
rng
    Deterministic, hierarchically-derivable random streams so every
    experiment is reproducible from a single seed.
records
    Small bounded containers used for runtime logging (ring logs, counters).
"""

from repro.util.bits import (
    bit,
    extract_field,
    insert_field,
    mask,
    parity,
    popcount,
    rotl,
    rotr,
    two_hot_masks,
    BitPermutation,
)
from repro.util.rng import derive_seed, SeededStream, spread
from repro.util.records import BoundedTable, RingLog, SaturatingCounter

__all__ = [
    "bit",
    "extract_field",
    "insert_field",
    "mask",
    "parity",
    "popcount",
    "rotl",
    "rotr",
    "two_hot_masks",
    "BitPermutation",
    "derive_seed",
    "SeededStream",
    "spread",
    "BoundedTable",
    "RingLog",
    "SaturatingCounter",
]
