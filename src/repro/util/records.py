"""Small bounded containers used for runtime bookkeeping.

Hardware tables are finite; the threat detector's fault-history store and
the L-Ob method log are modelled with these bounded structures so the
simulated hardware cannot accumulate unbounded state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class RingLog(Generic[V]):
    """Fixed-capacity append-only log; oldest entries are evicted first."""

    __slots__ = ("capacity", "_items", "_dropped")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: list[V] = []
        self._dropped = 0

    def append(self, item: V) -> None:
        self._items.append(item)
        if len(self._items) > self.capacity:
            del self._items[0]
            self._dropped += 1

    @property
    def dropped(self) -> int:
        """Entries evicted so far."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[V]:
        return iter(self._items)

    def __getitem__(self, idx: int) -> V:
        return self._items[idx]

    def clear(self) -> None:
        self._items.clear()


class BoundedTable(Generic[K, V]):
    """LRU-evicting key/value table modelling a small hardware CAM."""

    __slots__ = ("capacity", "_table")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._table: OrderedDict[K, V] = OrderedDict()

    def get(self, key: K, default: V | None = None) -> V | None:
        if key in self._table:
            self._table.move_to_end(key)
            return self._table[key]
        return default

    def put(self, key: K, value: V) -> None:
        if key in self._table:
            self._table.move_to_end(key)
        self._table[key] = value
        if len(self._table) > self.capacity:
            self._table.popitem(last=False)

    def pop(self, key: K, default: V | None = None) -> V | None:
        return self._table.pop(key, default)

    def __contains__(self, key: K) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def items(self):
        return self._table.items()

    def clear(self) -> None:
        self._table.clear()


class SaturatingCounter:
    """An ``n``-bit saturating up/down counter (hardware idiom)."""

    __slots__ = ("maximum", "value")

    def __init__(self, bits: int, initial: int = 0):
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError("initial value out of range")
        self.value = initial

    def up(self, amount: int = 1) -> int:
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def down(self, amount: int = 1) -> int:
        self.value = max(0, self.value - amount)
        return self.value

    @property
    def saturated(self) -> bool:
        return self.value == self.maximum

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter(value={self.value}, max={self.maximum})"
