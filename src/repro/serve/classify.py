"""Pluggable streaming classifiers over feature frames.

A :class:`Classifier` consumes the :class:`~repro.serve.features.FeatureFrame`
sequence and emits :class:`Verdict` values.  Two ship here, both thin
wrappers over the resilience layer so the statistical cores live once:

* :class:`ZScoreClassifier` — the exact Welford baseline / z-threshold
  / streak rules of :class:`~repro.resilience.detect.TrafficStatsDetector`
  (via :meth:`~repro.resilience.detect.Welford.observe`), applied to
  per-link NACK counts and the chip-wide in-flight backlog rebuilt
  from bus events;
* :class:`LocalizerClassifier` — a
  :class:`~repro.resilience.localize.TopologyLocalizer` per run, fed
  the frames' detector flags (and, chained, the upstream z-score
  suspicions), emitting its fused attacker estimates as verdicts.

Verdict streams are a pure function of the frame sequence, hence of
the event stream, hence byte-identical across engines and between a
live service run and an offline replay of the recorded stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.noc.config import NoCConfig
from repro.noc.topology import all_links
from repro.obs.collectors import link_label, parse_link_label
from repro.resilience.detect import DetectConfig, DetectionEvent, Welford
from repro.resilience.localize import (
    LocalizeConfig,
    LocalizeEvent,
    TopologyLocalizer,
)
from repro.serve.features import FeatureFrame
from repro.sim.scenario import Scenario

#: clamp for infinite z-scores (flat baseline), matching the detector
_Z_CLAMP = 1e9


@dataclass(frozen=True)
class Verdict:
    """One classifier decision on the stream."""

    #: window-close cycle the verdict was issued at
    cycle: int
    #: "suspect_link" | "backpressure" | "estimate" | ...
    kind: str
    #: scenario (run label) the verdict is about
    run: str
    #: what is suspected: a link label, "inflight", ...
    subject: str
    #: anomaly magnitude (z-score or localization score)
    score: float
    #: classifier that issued it
    source: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "run": self.run,
            "subject": self.subject,
            "score": round(self.score, 6),
            "source": self.source,
            "detail": self.detail,
        }


class Classifier:
    """Interface: fold frames, emit verdicts.

    ``observe`` is called once per closed frame, in frame order;
    ``finish`` once after the last frame.  Implementations must be
    deterministic functions of the frame sequence — no wall-clock, no
    randomness — or the service's replay guarantee breaks.
    """

    #: stable name stamped into Verdict.source
    name = "classifier"

    def observe(self, frame: FeatureFrame) -> list[Verdict]:
        raise NotImplementedError

    def finish(self) -> list[Verdict]:
        return []


class _RunChannels:
    """Per-run z-score state: one Welford per link plus the backlog."""

    __slots__ = ("links", "inflight", "flagged", "backpressure_flagged")

    def __init__(self) -> None:
        self.links: dict[str, Welford] = {}
        self.inflight = Welford()
        self.flagged: set[str] = set()
        self.backpressure_flagged = False


class ZScoreClassifier(Classifier):
    """The detector's statistical rules, re-applied to bus frames.

    Matches :class:`~repro.resilience.detect.TrafficStatsDetector`
    channel-for-channel on the NACK side: every link (pre-seeded from
    the topology when built via :func:`default_classifiers`, else
    first-seen) is observed every window — zero windows included, so
    warmup builds the same quiet baseline.  Back-pressure has no
    per-router occupancy on the bus, so the chip-wide in-flight
    backlog (cumulative injects - delivers) stands in for it.

    A channel flags once (``suspect_link`` / ``backpressure``) and is
    then left alone, like the live detector.
    """

    name = "zscore"

    def __init__(
        self,
        config: Optional[DetectConfig] = None,
        *,
        cfg: Optional[NoCConfig] = None,
    ):
        self.config = config or DetectConfig()
        #: topology to pre-seed link channels from (None: lazy)
        self.cfg = cfg
        self._runs: dict[str, _RunChannels] = {}
        #: verdicts from the most recent observe() call, for chaining
        self.latest: list[Verdict] = []

    def _channels(self, run: str) -> _RunChannels:
        channels = self._runs.get(run)
        if channels is None:
            channels = _RunChannels()
            if self.cfg is not None:
                for key in all_links(self.cfg):
                    channels.links[link_label(key)] = Welford()
            self._runs[run] = channels
        return channels

    def observe(self, frame: FeatureFrame) -> list[Verdict]:
        config = self.config
        channels = self._channels(frame.run)
        verdicts: list[Verdict] = []
        links = channels.links
        for label in frame.links:
            if label not in links:
                links[label] = Welford()
        for label in sorted(links):
            if label in channels.flagged:
                continue
            stats = links[label]
            entry = frame.links.get(label)
            value = float(entry["nacks"]) if entry is not None else 0.0
            z = min(stats.z_score(value), _Z_CLAMP)
            if stats.observe(value, config):
                channels.flagged.add(label)
                verdicts.append(
                    Verdict(
                        cycle=frame.end,
                        kind="suspect_link",
                        run=frame.run,
                        subject=label,
                        score=z,
                        source=self.name,
                        detail=f"retrans-rate z={z:.1f}",
                    )
                )
        if not channels.backpressure_flagged:
            value = float(frame.inflight)
            z = min(channels.inflight.z_score(value), _Z_CLAMP)
            if channels.inflight.observe(value, config):
                channels.backpressure_flagged = True
                verdicts.append(
                    Verdict(
                        cycle=frame.end,
                        kind="backpressure",
                        run=frame.run,
                        subject="inflight",
                        score=z,
                        source=self.name,
                        detail=f"in-flight backlog z={z:.1f}",
                    )
                )
        self.latest = verdicts
        return verdicts


class LocalizerClassifier(Classifier):
    """Attacker localization as a stream consumer.

    Keeps one :class:`~repro.resilience.localize.TopologyLocalizer`
    per run and feeds it every detector flag carried in the frames
    (``detect`` bus events from a sim-side detector) plus, when
    chained onto an ``upstream`` :class:`ZScoreClassifier`, that
    classifier's own ``suspect_link`` verdicts — so localization works
    even for scenarios that configured no in-sim detector.  Estimate
    events come back out as ``estimate`` verdicts.
    """

    name = "localizer"

    def __init__(
        self,
        cfg: NoCConfig,
        config: Optional[LocalizeConfig] = None,
        *,
        upstream: Optional[ZScoreClassifier] = None,
    ):
        self.cfg = cfg
        self.config = config or LocalizeConfig()
        self.upstream = upstream
        self._runs: dict[str, TopologyLocalizer] = {}
        self._fresh: list[LocalizeEvent] = []

    def _localizer(self, run: str) -> TopologyLocalizer:
        localizer = self._runs.get(run)
        if localizer is None:
            localizer = TopologyLocalizer(self.cfg, self.config)
            # no enclosing monitor lap out here: charge "localize"
            # without debiting "detect"
            localizer.profile_source = None
            localizer.event_hooks.append(self._fresh.append)
            self._runs[run] = localizer
        return localizer

    def observe(self, frame: FeatureFrame) -> list[Verdict]:
        localizer = self._localizer(frame.run)
        self._fresh.clear()
        for flag in frame.detects:
            label = flag.get("link")
            localizer.ingest(
                DetectionEvent(
                    cycle=flag["cycle"],
                    kind=(
                        "suspect_link"
                        if label is not None
                        else "suspect_router"
                    ),
                    link=(
                        parse_link_label(label)
                        if label is not None
                        else None
                    ),
                    router=flag.get("router"),
                    z=float(flag.get("z", 0.0)),
                    detail=flag.get("detail", ""),
                )
            )
        if self.upstream is not None:
            for verdict in self.upstream.latest:
                if verdict.run != frame.run:
                    continue
                if verdict.kind != "suspect_link":
                    continue
                localizer.ingest(
                    DetectionEvent(
                        cycle=verdict.cycle,
                        kind="suspect_link",
                        link=parse_link_label(verdict.subject),
                        z=verdict.score,
                        detail=verdict.detail,
                    )
                )
        verdicts = [
            Verdict(
                cycle=frame.end,
                kind="estimate",
                run=frame.run,
                subject=link_label(event.link),
                score=event.score,
                source=self.name,
                detail=event.detail,
            )
            for event in self._fresh
        ]
        self._fresh.clear()
        return verdicts

    def summary(self, run: str) -> dict:
        """The run's localizer report (empty when the run never
        produced a footprint)."""
        localizer = self._runs.get(run)
        return localizer.summary() if localizer is not None else {}


def default_classifiers(scenario: Scenario) -> list[Classifier]:
    """The standard chain for a scenario: z-score rules (detector
    config when the scenario carries one) feeding topology-aware
    localization (ditto)."""
    defense = scenario.defense
    zscore = ZScoreClassifier(
        config=defense.detector or DetectConfig(), cfg=scenario.cfg
    )
    localizer = LocalizerClassifier(
        scenario.cfg,
        config=defense.localizer or LocalizeConfig(),
        upstream=zscore,
    )
    return [zscore, localizer]
