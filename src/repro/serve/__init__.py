"""Streaming detection service: live analytics on the obs event bus.

The observability layer (:mod:`repro.obs`) publishes a typed event
stream — injections, retransmissions, corruptions, escalations,
detector flags — that until now was only exported post-run.  This
package consumes it *while the simulation runs*:

* :mod:`repro.serve.features` folds bus events into cycle-windowed
  per-link / per-router feature frames (the streaming generalization
  of :class:`repro.obs.series.WindowedSeries`);
* :mod:`repro.serve.classify` defines the pluggable
  :class:`~repro.serve.classify.Classifier` interface and ships two
  implementations: the z-score rules of
  :class:`~repro.resilience.detect.TrafficStatsDetector` re-applied to
  bus frames, and :class:`~repro.resilience.localize.TopologyLocalizer`
  wrapped as a frame consumer;
* :mod:`repro.serve.pipeline` pumps subscription -> frames ->
  classifiers between engine chunks (:func:`run_streaming`), or over a
  recorded ``events.jsonl`` offline (:func:`replay_events`) — both
  produce byte-identical verdict streams;
* :mod:`repro.serve.api` is the asyncio service boundary: clients
  submit scenarios over line-delimited JSON and receive incremental
  verdicts and metric snapshots; concurrent submissions of the same
  scenario coalesce onto one simulation and completed runs are served
  from the :class:`~repro.sim.cache.ResultCache`.

Everything here is a pure observer: a streamed run's
:class:`~repro.sim.engine.RunResult` is byte-identical to a bare run
of the same scenario.
"""

from repro.serve.classify import (
    Classifier,
    LocalizerClassifier,
    Verdict,
    ZScoreClassifier,
    default_classifiers,
)
from repro.serve.features import FeatureExtractor, FeatureFrame
from repro.serve.pipeline import (
    DetectionPipeline,
    StreamingRun,
    replay_events,
    run_streaming,
)

__all__ = [
    "Classifier",
    "DetectionPipeline",
    "FeatureExtractor",
    "FeatureFrame",
    "LocalizerClassifier",
    "StreamingRun",
    "Verdict",
    "ZScoreClassifier",
    "default_classifiers",
    "replay_events",
    "run_streaming",
]
