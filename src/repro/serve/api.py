"""Async scenario-serving boundary over line-delimited JSON.

Clients connect over TCP and exchange newline-delimited JSON objects:

    -> {"op": "submit", "named": "fig11"}
    -> {"op": "submit", "scenario": {...Scenario.to_dict()...},
        "engine": "event"}
    -> {"op": "ping"}

    <- {"type": "accepted", "hash": h, "name": ..., "cached": false}
    <- {"type": "verdict",  "hash": h, ...Verdict.to_dict()...}
    <- {"type": "snapshot", "hash": h, "cycle": ..., ...}
    <- {"type": "result",   "hash": h, "cached": false,
        "result": {...RunResult...}, "dropped": 0}
    <- {"type": "error", "error": "..."}
    <- {"type": "pong"}

Design points, mirroring the obs layer's discipline:

* **Coalescing** — submissions are keyed by
  :meth:`~repro.sim.scenario.Scenario.content_hash`; concurrent
  clients submitting the same scenario share ONE simulation.  A late
  subscriber first replays the job's message log, then follows live —
  every subscriber sees the identical verdict sequence.
* **Caching** — completed runs are memoized in the
  :class:`~repro.sim.cache.ResultCache` (same code-version
  invalidation as the runner's result cache); a resubmission replays
  the stored stream without simulating.
* **Backpressure** — each client connection owns one bounded
  :class:`asyncio.Queue`.  Stream messages (verdicts, snapshots) are
  offered drop-new, exactly the bus's subscription discipline: a slow
  reader loses intermediate messages (counted, reported on its final
  message) but can never stall the simulation or other clients.
  Terminal messages are delivered with an awaited put, so a result is
  never dropped.
* **Simulations run off-loop** — in ``asyncio.to_thread``, publishing
  back via ``loop.call_soon_threadsafe``; a semaphore caps concurrent
  jobs.  The streamed run itself is a pure observer (see
  :mod:`repro.serve.pipeline`), so service results are byte-identical
  to direct runs.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Optional

from repro.serve.pipeline import DEFAULT_CHUNK, run_streaming
from repro.serve.scenarios import named_scenario
from repro.sim.cache import ResultCache, spec_hash
from repro.sim.scenario import Scenario

#: bump on incompatible changes to the cached stream payload layout
SERVE_CACHE_FORMAT = 1


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick (the bound port is on the started server)
    port: int = 7441
    #: ResultCache root (None: REPRO_CACHE_DIR / .repro-cache default)
    cache_dir: Optional[str] = None
    #: concurrent simulations (further jobs queue on the semaphore)
    max_jobs: int = 2
    #: per-client stream buffer (messages); overflow drops-new
    client_queue: int = 65536
    #: engine cycles per pump round for served runs
    chunk: int = DEFAULT_CHUNK


class _ClientStream:
    """One client's bounded outbox: drop-new for stream messages,
    awaited delivery for messages that must arrive."""

    __slots__ = ("queue", "dropped", "closed")

    def __init__(self, maxsize: int):
        self.queue: asyncio.Queue = asyncio.Queue(maxsize)
        self.dropped = 0
        #: set when the connection is gone — delivery then discards,
        #: so a job finishing late can never block on a dead client
        self.closed = False

    def offer(self, message: dict) -> None:
        if self.closed:
            return
        try:
            self.queue.put_nowait(message)
        except asyncio.QueueFull:
            self.dropped += 1

    async def deliver(self, message: dict) -> None:
        if self.closed:
            return
        await self.queue.put(message)


class _Job:
    """One in-flight simulation shared by its subscribers."""

    __slots__ = ("hash", "scenario", "engine", "log", "streams", "done")

    def __init__(
        self, content_hash: str, scenario: Scenario, engine: Optional[str]
    ):
        self.hash = content_hash
        self.scenario = scenario
        self.engine = engine
        #: every message published so far (late subscribers replay it)
        self.log: list[dict] = []
        self.streams: list[_ClientStream] = []
        self.done = False

    def publish(self, message: dict) -> None:
        """Loop-thread only: log + fan out (drop-new per client)."""
        self.log.append(message)
        for stream in self.streams:
            stream.offer(message)


class DetectionServer:
    """The serving state machine; see the module docstring."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        cache: Optional[ResultCache] = None,
    ):
        self.config = config or ServeConfig()
        self.cache = (
            cache
            if cache is not None
            else ResultCache(self.config.cache_dir)
        )
        #: content hash -> in-flight job
        self.jobs: dict[str, _Job] = {}
        self._sem = asyncio.Semaphore(self.config.max_jobs)
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: set[asyncio.Task] = set()
        self.stats = {
            "submissions": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "jobs_run": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        return self._server

    @property
    def bound_port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._clients:
            for task in list(self._clients):
                task.cancel()
            await asyncio.gather(
                *list(self._clients), return_exceptions=True
            )
            self._clients.clear()

    # -- cache keying ------------------------------------------------------
    def _cache_key(self, content_hash: str) -> str:
        # distinct from the plain-run key: the payload carries the
        # verdict stream and frames, not just the RunResult
        return spec_hash(
            {"serve": content_hash, "format": SERVE_CACHE_FORMAT}
        )

    # -- connection handling ----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
        outbox = _ClientStream(self.config.client_queue)
        pump = asyncio.create_task(self._pump_out(outbox, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await outbox.deliver(
                        {"type": "error", "error": f"invalid JSON: {exc}"}
                    )
                    continue
                await self._dispatch(request, outbox)
        except asyncio.CancelledError:
            pass  # server shutdown: fall through to the close below
        finally:
            if task is not None:
                self._clients.discard(task)
            # closed first: a job holding this stream must never block
            # delivering to a connection that is gone
            outbox.closed = True
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _pump_out(
        self, outbox: _ClientStream, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            message = await outbox.queue.get()
            try:
                writer.write(
                    (json.dumps(message, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
            except (ConnectionError, OSError):
                return  # reader side will see EOF and close us down

    async def _dispatch(
        self, request: dict, outbox: _ClientStream
    ) -> None:
        if not isinstance(request, dict):
            await outbox.deliver(
                {"type": "error", "error": "request must be an object"}
            )
            return
        op = request.get("op")
        if op == "ping":
            await outbox.deliver({"type": "pong"})
        elif op == "submit":
            await self._submit(request, outbox)
        else:
            await outbox.deliver(
                {"type": "error", "error": f"unknown op {op!r}"}
            )

    # -- submission --------------------------------------------------------
    def _decode_scenario(self, request: dict) -> Scenario:
        name = request.get("named")
        if name is not None:
            return named_scenario(name)
        payload = request.get("scenario")
        if payload is None:
            raise ValueError(
                "submit needs either 'named' or 'scenario'"
            )
        return Scenario.from_dict(payload)

    async def _submit(
        self, request: dict, outbox: _ClientStream
    ) -> None:
        try:
            scenario = self._decode_scenario(request)
            engine = request.get("engine")
            if engine is not None and engine not in ("sweep", "event"):
                raise ValueError(f"unknown engine {engine!r}")
        except (ValueError, KeyError, TypeError) as exc:
            await outbox.deliver({"type": "error", "error": str(exc)})
            return
        content_hash = scenario.content_hash()
        self.stats["submissions"] += 1

        stored = self.cache.get(self._cache_key(content_hash))
        if stored is not None:
            self.stats["cache_hits"] += 1
            await self._replay_cached(
                content_hash, scenario.name, stored, outbox
            )
            return

        job = self.jobs.get(content_hash)
        if job is None:
            job = _Job(content_hash, scenario, engine)
            self.jobs[content_hash] = job
            self.stats["jobs_run"] += 1
            asyncio.create_task(self._run_job(job))
        else:
            self.stats["coalesced"] += 1
        await outbox.deliver(
            {
                "type": "accepted",
                "hash": content_hash,
                "name": scenario.name,
                "cached": False,
            }
        )
        if job.done:
            # finished between our cache check and now: replay reliably
            for message in job.log:
                await outbox.deliver(message)
        else:
            # atomic with the subscribe (no await between): replay the
            # backlog, then follow live — no gap, no duplicate
            for message in job.log:
                outbox.offer(message)
            job.streams.append(outbox)

    async def _replay_cached(
        self,
        content_hash: str,
        name: str,
        stored: dict,
        outbox: _ClientStream,
    ) -> None:
        await outbox.deliver(
            {
                "type": "accepted",
                "hash": content_hash,
                "name": name,
                "cached": True,
            }
        )
        for verdict in stored.get("verdict_stream", ()):
            await outbox.deliver(
                {"type": "verdict", "hash": content_hash, **verdict}
            )
        await outbox.deliver(
            {
                "type": "result",
                "hash": content_hash,
                "cached": True,
                "result": stored.get("result"),
                "dropped": stored.get("dropped", 0),
            }
        )

    # -- job execution -----------------------------------------------------
    async def _run_job(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()

        def on_verdict(verdict) -> None:
            loop.call_soon_threadsafe(
                job.publish,
                {"type": "verdict", "hash": job.hash, **verdict.to_dict()},
            )

        def on_snapshot(snapshot: dict) -> None:
            loop.call_soon_threadsafe(
                job.publish,
                {"type": "snapshot", "hash": job.hash, **snapshot},
            )

        try:
            async with self._sem:
                run = await asyncio.to_thread(
                    run_streaming,
                    job.scenario,
                    engine=job.engine,
                    chunk=self.config.chunk,
                    on_verdict=on_verdict,
                    on_snapshot=on_snapshot,
                )
        except Exception as exc:  # noqa: BLE001 - reported to clients
            final = {
                "type": "error",
                "hash": job.hash,
                "error": f"{type(exc).__name__}: {exc}",
            }
        else:
            payload = run.to_payload()
            self.cache.put(self._cache_key(job.hash), payload)
            final = {
                "type": "result",
                "hash": job.hash,
                "cached": False,
                "result": payload["result"],
                "dropped": payload["dropped"],
            }
        job.done = True
        job.log.append(final)
        self.jobs.pop(job.hash, None)
        streams, job.streams = job.streams, []
        for stream in streams:
            await stream.deliver(final)


# ---------------------------------------------------------------------------
# client helper (the submit CLI and tests share it)
# ---------------------------------------------------------------------------
async def submit_and_stream(
    host: str,
    port: int,
    request: dict,
    *,
    on_message=None,
) -> list[dict]:
    """Submit one request and collect messages until its terminal
    ``result``/``error``.  Returns every received message in order;
    ``on_message`` (if given) additionally fires per message."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        messages: list[dict] = []
        while True:
            line = await reader.readline()
            if not line:
                raise ConnectionError(
                    "server closed the stream before a terminal message"
                )
            message = json.loads(line)
            messages.append(message)
            if on_message is not None:
                on_message(message)
            if message.get("type") in ("result", "error"):
                return messages
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
