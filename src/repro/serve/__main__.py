"""``python -m repro.serve`` — the streaming detection service CLI.

Subcommands:

* ``serve``  — start the asyncio service and print a readiness line
  (``repro-serve listening on HOST:PORT``) once the socket is bound.
* ``run``    — run one scenario directly with live verdict extraction
  (no server), printing verdicts as they surface; ``--json`` writes
  the full payload (result + verdict stream) for CI comparison.
* ``submit`` — connect to a running service, submit a scenario and
  stream its messages to stdout; exits nonzero on an error message.
* ``replay`` — re-derive the verdict stream offline from a recorded
  ``events.jsonl`` (byte-reproducible against the live stream).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from repro.serve.api import DetectionServer, ServeConfig, submit_and_stream
from repro.serve.classify import ZScoreClassifier, default_classifiers
from repro.serve.pipeline import (
    DEFAULT_CHUNK,
    replay_events,
    run_streaming,
)
from repro.serve.scenarios import NAMED_SCENARIOS, named_scenario
from repro.sim.scenario import Scenario


def _load_scenario(args) -> Scenario:
    if args.named is not None:
        return named_scenario(args.named)
    if args.scenario is not None:
        with open(args.scenario, encoding="utf-8") as fh:
            return Scenario.from_dict(json.load(fh))
    raise SystemExit("need --named or --scenario")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--named",
        choices=sorted(NAMED_SCENARIOS),
        help="registered scenario name",
    )
    parser.add_argument(
        "--scenario", help="path to a Scenario JSON file"
    )
    parser.add_argument(
        "--engine", choices=("sweep", "event"), default=None
    )


def _cmd_serve(args) -> int:
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        max_jobs=args.max_jobs,
        chunk=args.chunk,
    )

    async def _serve() -> None:
        server = DetectionServer(config)
        srv = await server.start()
        print(
            f"repro-serve listening on "
            f"{config.host}:{server.bound_port}",
            flush=True,
        )
        async with srv:
            await srv.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover
        pass
    return 0


def _cmd_run(args) -> int:
    scenario = _load_scenario(args)

    def on_verdict(verdict) -> None:
        if not args.json:
            print(json.dumps(verdict.to_dict(), sort_keys=True))

    run = run_streaming(
        scenario,
        engine=args.engine,
        chunk=args.chunk,
        on_verdict=on_verdict,
        events_jsonl=args.events_jsonl,
    )
    payload = {
        "scenario_hash": scenario.content_hash(),
        **run.to_payload(),
    }
    del payload["frames"]  # bulky; the cacheable payload keeps them
    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
    else:
        result = payload["result"]
        print(
            f"{result['name']}: completed={result['completed']} "
            f"cycles={result['cycles']} "
            f"verdicts={len(payload['verdict_stream'])} "
            f"dropped={payload['dropped']}"
        )
    return 0


def _cmd_submit(args) -> int:
    request: dict = {"op": "submit"}
    if args.named is not None:
        request["named"] = args.named
    elif args.scenario is not None:
        with open(args.scenario, encoding="utf-8") as fh:
            request["scenario"] = json.load(fh)
    else:
        raise SystemExit("need --named or --scenario")
    if args.engine is not None:
        request["engine"] = args.engine

    def on_message(message: dict) -> None:
        print(json.dumps(message, sort_keys=True), flush=True)

    messages = asyncio.run(
        submit_and_stream(
            args.host, args.port, request, on_message=on_message
        )
    )
    return 1 if messages[-1].get("type") == "error" else 0


def _cmd_replay(args) -> int:
    from repro.obs.exporters import read_events_jsonl

    events = read_events_jsonl(args.events)
    if args.named is not None:
        classifiers = default_classifiers(named_scenario(args.named))
        window = 64
        scenario = named_scenario(args.named)
        if scenario.defense.detector is not None:
            window = scenario.defense.detector.window
    else:
        # no topology known: z-score rules only, channels first-seen
        classifiers = [ZScoreClassifier()]
        window = args.window
    pipeline = replay_events(
        events, classifiers, window=window, up_to=args.up_to
    )
    for verdict in pipeline.verdict_stream():
        print(json.dumps(verdict, sort_keys=True))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="streaming detection service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7441)
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--max-jobs", type=int, default=2)
    serve.add_argument("--chunk", type=int, default=DEFAULT_CHUNK)
    serve.set_defaults(func=_cmd_serve)

    run_p = sub.add_parser("run", help="direct streamed run")
    _add_scenario_args(run_p)
    run_p.add_argument("--chunk", type=int, default=DEFAULT_CHUNK)
    run_p.add_argument(
        "--events-jsonl", default=None,
        help="record the event stream for offline replay",
    )
    run_p.add_argument(
        "--json", default=None,
        help="write the run payload as JSON ('-' for stdout)",
    )
    run_p.set_defaults(func=_cmd_run)

    submit = sub.add_parser("submit", help="submit to a running service")
    _add_scenario_args(submit)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7441)
    submit.set_defaults(func=_cmd_submit)

    replay = sub.add_parser("replay", help="replay a recorded stream")
    replay.add_argument("events", help="events.jsonl path")
    replay.add_argument(
        "--named", choices=sorted(NAMED_SCENARIOS), default=None,
        help="scenario the stream was recorded from (classifier match)",
    )
    replay.add_argument("--window", type=int, default=64)
    replay.add_argument(
        "--up-to", type=int, default=None,
        help="final simulated cycle of the recorded run",
    )
    replay.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
