"""Pump: event subscription -> feature frames -> classifier verdicts.

Two drivers share one :class:`DetectionPipeline`:

* :func:`run_streaming` — the live path.  It builds the simulation
  with a private events-only observability bundle, subscribes the
  pipeline to the bus, and advances the engine in chunks, pumping
  between chunks so verdicts surface *while the run progresses*.  The
  chunked advance is provably equivalent to the one-shot
  :meth:`Simulation._run` loop (both engines land on identical
  states), so the returned :class:`~repro.sim.engine.RunResult` is
  byte-identical to a bare run — the streaming layer is a pure
  observer.

* :func:`replay_events` — the offline path.  It feeds a recorded
  ``events.jsonl`` stream through the identical extractor and
  classifiers.  Because frames are a pure function of the event
  stream (see :mod:`repro.serve.features`), the replayed verdict
  stream is byte-identical to the live one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Optional

from repro.obs.events import Event, Subscription
from repro.obs.instrument import ObsConfig, Observability
from repro.serve.classify import Classifier, Verdict, default_classifiers
from repro.serve.features import FeatureExtractor, FeatureFrame
from repro.sim.engine import RunResult, Simulation
from repro.sim.scenario import Scenario

#: engine cycles advanced between pump rounds (verdict granularity of
#: the live stream; does not affect the verdicts themselves)
DEFAULT_CHUNK = 256

#: pipeline subscription bound — generous, because a dropped event
#: would make live and replay streams diverge (drops are counted and
#: surfaced so that divergence is at least visible)
DEFAULT_CAPACITY = 2_000_000


class DetectionPipeline:
    """One subscription, one extractor, an ordered classifier chain."""

    def __init__(
        self,
        classifiers: Iterable[Classifier],
        *,
        window: int = 64,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.classifiers = list(classifiers)
        self.extractor = FeatureExtractor(window)
        self.capacity = capacity
        self.sub: Optional[Subscription] = None
        self._bus = None
        #: every closed frame, in close order
        self.frames: list[FeatureFrame] = []
        #: every verdict issued, in issue order
        self.verdicts: list[Verdict] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, obs: Observability) -> "DetectionPipeline":
        """Subscribe to the bundle's bus (own bounded queue)."""
        self._bus = obs.bus
        self.sub = obs.bus.subscribe(self.capacity)
        return self

    def detach(self) -> None:
        if self._bus is not None and self.sub is not None:
            self._bus.unsubscribe(self.sub)
        self._bus = None
        self.sub = None

    @property
    def dropped(self) -> int:
        """Events the subscription dropped (queue overflow)."""
        return self.sub.dropped if self.sub is not None else 0

    # -- pumping -----------------------------------------------------------
    def pump(self) -> list[Verdict]:
        """Drain the subscription and classify whatever it closed."""
        if self.sub is None:
            return []
        return self.ingest(self.sub.drain())

    def ingest(self, events: Iterable[Event]) -> list[Verdict]:
        """Fold externally-supplied events (the replay path)."""
        fresh: list[Verdict] = []
        for frame in self.extractor.feed(events):
            fresh.extend(self._classify(frame))
        return fresh

    def finish(self, up_to: Optional[int] = None) -> list[Verdict]:
        """Final pump: drain, flush complete windows up to the final
        simulated cycle, run every classifier's ``finish``."""
        fresh = self.pump()
        for frame in self.extractor.flush(up_to):
            fresh.extend(self._classify(frame))
        for classifier in self.classifiers:
            tail = classifier.finish()
            self.verdicts.extend(tail)
            fresh.extend(tail)
        return fresh

    def _classify(self, frame: FeatureFrame) -> list[Verdict]:
        self.frames.append(frame)
        out: list[Verdict] = []
        for classifier in self.classifiers:
            out.extend(classifier.observe(frame))
        self.verdicts.extend(out)
        return out

    # -- reporting ---------------------------------------------------------
    def verdict_stream(self) -> list[dict]:
        """The full verdict sequence in canonical JSON form."""
        return [verdict.to_dict() for verdict in self.verdicts]

    def frames_jsonable(self) -> list[dict]:
        return [frame.to_dict() for frame in self.frames]


@dataclass
class StreamingRun:
    """A streamed run: the bare-identical result plus the stream."""

    result: RunResult
    verdicts: list[Verdict] = field(default_factory=list)
    frames: list[FeatureFrame] = field(default_factory=list)
    #: bus events the pipeline subscription dropped (0 in any healthy
    #: run; nonzero means the stream under-observed the simulation)
    dropped: int = 0

    def verdict_stream(self) -> list[dict]:
        return [verdict.to_dict() for verdict in self.verdicts]

    def to_payload(self) -> dict:
        """Cacheable JSON payload (what the service memoizes)."""
        return {
            "result": asdict(self.result),
            "verdict_stream": self.verdict_stream(),
            "frames": [frame.to_dict() for frame in self.frames],
            "dropped": self.dropped,
        }


def _drive(
    sim: Simulation, chunk: int, pump: Callable[[], None]
) -> bool:
    """Advance ``sim`` to completion in ``chunk``-cycle slices, calling
    ``pump`` between slices.  Returns ``completed`` with exactly the
    semantics of the one-shot :meth:`Simulation._run` loop.
    """
    scenario = sim.scenario
    net = sim.network
    if scenario.duration is not None:
        while net.cycle < scenario.duration:
            sim.advance_to(min(net.cycle + chunk, scenario.duration))
            pump()
        return True
    # drain mode: an absolute cycle budget, stall-aborted
    stall_limit = scenario.stall_limit
    while True:
        if net.drained:
            return True
        remaining = scenario.max_cycles - net.cycle
        if remaining <= 0:
            return net.drained
        done = sim.run_until_drained(min(chunk, remaining), stall_limit)
        pump()
        if done:
            return True
        if (
            stall_limit is not None
            and net.stats.stalled_for(net.cycle) > stall_limit
        ):
            return False  # stall abort, same condition the engine uses


def run_streaming(
    scenario: Scenario,
    *,
    engine: Optional[str] = None,
    chunk: int = DEFAULT_CHUNK,
    window: Optional[int] = None,
    classifiers: Optional[list[Classifier]] = None,
    capacity: int = DEFAULT_CAPACITY,
    on_verdict: Optional[Callable[[Verdict], None]] = None,
    on_snapshot: Optional[Callable[[dict], None]] = None,
    events_jsonl: Optional[str] = None,
) -> StreamingRun:
    """Run ``scenario`` with live verdict extraction.

    ``on_verdict`` fires for each verdict as its window closes (in
    stream order); ``on_snapshot`` fires once per engine chunk with a
    small progress snapshot.  ``events_jsonl`` additionally records
    the raw event stream for :func:`replay_events`.
    """
    if chunk < 1:
        raise ValueError("chunk must be positive")
    if classifiers is None:
        classifiers = default_classifiers(scenario)
    if window is None:
        window = (
            scenario.defense.detector.window
            if scenario.defense.detector is not None
            else 64
        )
    # events-only bundle: no metrics registry, no windowed series (the
    # pipeline rebuilds windows from events), optional JSONL record
    obs = Observability(
        ObsConfig(
            metrics=False,
            window=0,
            queue_capacity=capacity,
            events_jsonl=events_jsonl,
        )
    )
    if events_jsonl is None and obs.export_sub is not None:
        # nobody reads the export stream: unhook it so every event is
        # queued (and retained) once, on the pipeline's subscription
        obs.bus.unsubscribe(obs.export_sub)
        obs.export_sub = None
    sim = Simulation(scenario, engine=engine, obs=obs)
    pipeline = DetectionPipeline(
        classifiers, window=window, capacity=capacity
    ).attach(obs)

    def pump() -> None:
        fresh = pipeline.pump()
        if on_verdict is not None:
            for verdict in fresh:
                on_verdict(verdict)
        if on_snapshot is not None:
            stats = sim.network.stats
            on_snapshot(
                {
                    "cycle": sim.network.cycle,
                    "packets_injected": stats.packets_injected,
                    "packets_completed": stats.packets_completed,
                    "dropped_flits": stats.dropped_flits,
                }
            )

    completed = _drive(sim, chunk, pump)
    obs.finalize(sim)
    tail = pipeline.finish(up_to=sim.network.cycle)
    if on_verdict is not None:
        for verdict in tail:
            on_verdict(verdict)
    if events_jsonl is not None:
        obs.export()
    return StreamingRun(
        result=sim.result(completed),
        verdicts=list(pipeline.verdicts),
        frames=list(pipeline.frames),
        dropped=pipeline.dropped,
    )


def replay_events(
    events: Iterable[Event],
    classifiers: list[Classifier],
    *,
    window: int = 64,
    up_to: Optional[int] = None,
) -> DetectionPipeline:
    """Re-derive the verdict stream from a recorded event stream.

    ``up_to`` is the recorded run's final cycle
    (``RunResult.cycles``); passing it makes the replay close exactly
    the windows the live pipeline closed, so the streams compare
    byte-identically.
    """
    pipeline = DetectionPipeline(classifiers, window=window)
    pipeline.ingest(events)
    pipeline.finish(up_to)
    return pipeline
