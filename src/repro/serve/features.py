"""Fold the obs event stream into cycle-windowed feature frames.

The post-run collectors scrape component state; the streaming path has
only the bus.  :class:`FeatureExtractor` rebuilds the detector's view
from events alone: every ``window`` cycles of one run become a
:class:`FeatureFrame` holding per-link retransmission/corruption/
escalation counts, per-core injection/delivery counts, chip-wide
totals and the window's detector flags — exactly the series the
z-score rules in :mod:`repro.serve.classify` consume.

Determinism contract: a window closes when an event at or past its end
arrives (or at :meth:`FeatureExtractor.flush`), never on wall-clock or
pump timing — so the frame sequence is a pure function of the event
stream, and the event stream is byte-identical across engines.  Chunk
the pump however you like; the frames do not change.

The final *partial* window is discarded by :meth:`flush`, mirroring
the live :class:`~repro.resilience.detect.TrafficStatsDetector`, which
only observes complete windows at boundary cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.events import Event


@dataclass
class FeatureFrame:
    """One run's feature vector over the window ``[start, start+window)``."""

    run: str
    start: int
    window: int
    #: link label -> {"nacks": n, "corrupts": n, "escalates": n}
    links: dict = field(default_factory=dict)
    #: core id -> {"injects": n, "delivers": n}
    cores: dict = field(default_factory=dict)
    #: flits injected / delivered inside this window
    injects: int = 0
    delivers: int = 0
    #: cumulative injected - delivered at window close (back-pressure
    #: proxy: flits the fabric is holding)
    inflight: int = 0
    #: detector flags raised inside the window (``detect`` payloads)
    detects: list = field(default_factory=list)
    #: localization estimates raised inside the window
    localizes: list = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.start + self.window

    def link(self, label: str) -> dict:
        entry = self.links.get(label)
        if entry is None:
            entry = {"nacks": 0, "corrupts": 0, "escalates": 0}
            self.links[label] = entry
        return entry

    def core(self, core: int) -> dict:
        entry = self.cores.get(core)
        if entry is None:
            entry = {"injects": 0, "delivers": 0}
            self.cores[core] = entry
        return entry

    def to_dict(self) -> dict:
        """Canonical JSON form (sorted keys, so equal frames serialize
        byte-identically regardless of fold order)."""
        return {
            "run": self.run,
            "start": self.start,
            "window": self.window,
            "links": {
                label: dict(self.links[label])
                for label in sorted(self.links)
            },
            "cores": {
                str(core): dict(self.cores[core])
                for core in sorted(self.cores)
            },
            "injects": self.injects,
            "delivers": self.delivers,
            "inflight": self.inflight,
            "detects": [dict(d) for d in self.detects],
            "localizes": [dict(d) for d in self.localizes],
        }


class _RunState:
    """Per-run accumulation: the open frame plus cumulative totals."""

    __slots__ = ("frame", "injected_total", "delivered_total")

    def __init__(self, frame: FeatureFrame):
        self.frame = frame
        self.injected_total = 0
        self.delivered_total = 0


class FeatureExtractor:
    """Event stream -> ordered :class:`FeatureFrame` sequence.

    One extractor serves every run on the bus (an experiment's
    observability spans several scenarios); frames are windowed and
    closed independently per run.  Events within one run must arrive
    in non-decreasing cycle order — which the bus guarantees, since
    hooks emit as the simulation steps.
    """

    def __init__(self, window: int = 64):
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._runs: dict[str, _RunState] = {}
        #: frames closed so far
        self.frames_closed = 0
        #: events folded (ignored kinds excluded)
        self.events_folded = 0

    # -- feeding -----------------------------------------------------------
    def feed(self, events: Iterable[Event]) -> list[FeatureFrame]:
        """Fold events; returns the frames they closed, in close order."""
        closed: list[FeatureFrame] = []
        for event in events:
            state = self._runs.get(event.run)
            if state is None:
                state = _RunState(
                    FeatureFrame(event.run, 0, self.window)
                )
                self._runs[event.run] = state
            # close every window the event's cycle has moved past —
            # including empty ones, so a channel's baseline sees the
            # same zero windows the live detector does
            while event.cycle >= state.frame.end:
                closed.append(self._close(state))
            self._fold(state, event)
        return closed

    def flush(self, up_to: Optional[int] = None) -> list[FeatureFrame]:
        """Close every remaining *complete* window.

        ``up_to`` is the final simulated cycle: windows wholly before
        it close (empty or not); the trailing partial window is
        discarded, exactly as the live detector never observes a
        window the clock did not complete.  With ``up_to=None`` only
        windows already ended by a folded event close.
        """
        closed: list[FeatureFrame] = []
        for run in sorted(self._runs):
            state = self._runs[run]
            if up_to is not None:
                while state.frame.end <= up_to:
                    closed.append(self._close(state))
        return closed

    # -- internals ---------------------------------------------------------
    def _close(self, state: _RunState) -> FeatureFrame:
        frame = state.frame
        frame.inflight = state.injected_total - state.delivered_total
        state.frame = FeatureFrame(frame.run, frame.end, self.window)
        self.frames_closed += 1
        return frame

    def _fold(self, state: _RunState, event: Event) -> None:
        frame = state.frame
        kind = event.kind
        data = event.data
        if kind == "inject":
            frame.injects += 1
            state.injected_total += 1
            core = data.get("core")
            if core is not None:
                frame.core(core)["injects"] += 1
        elif kind == "deliver":
            frame.delivers += 1
            state.delivered_total += 1
            core = data.get("core")
            if core is not None:
                frame.core(core)["delivers"] += 1
        elif kind == "retransmit":
            link = data.get("link")
            if link is not None:
                frame.link(link)["nacks"] += 1
        elif kind == "corrupt":
            link = data.get("link")
            if link is not None:
                frame.link(link)["corrupts"] += 1
        elif kind == "escalate":
            link = data.get("link")
            if link is not None:
                frame.link(link)["escalates"] += 1
        elif kind == "detect":
            frame.detects.append({"cycle": event.cycle, **data})
        elif kind == "localize":
            frame.localizes.append({"cycle": event.cycle, **data})
        else:
            return  # verdict/obfuscate/contain/... : not featurized
        self.events_folded += 1
