"""Named scenarios the service accepts by name.

Clients can submit a full scenario JSON object, but the canonical
experiment runs are registered here so a one-line
``{"op": "submit", "named": "fig11"}`` reproduces exactly what the
experiment module would simulate — same content hash, so a direct
runner invocation and a service submission share cache entries.

Builders are looked up lazily (building fig11 traces a warm-up run to
pick the hot link), and every builder is deterministic: the same name
always yields the same :meth:`~repro.sim.scenario.Scenario.content_hash`.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.scenario import Scenario


def _fig11() -> Scenario:
    from repro.experiments.fig11_backpressure import build_scenario

    return build_scenario()


def _fig11_clean() -> Scenario:
    from repro.experiments.fig11_backpressure import build_scenario

    return build_scenario(with_trojan=False)


def _distributed_quick() -> Scenario:
    from repro.experiments.distributed import build_scenario

    # pinned to the quick (N=3, 4000-cycle) CI case regardless of the
    # REPRO_DISTRIBUTED_QUICK env var in the serving process
    return build_scenario(n=3, duration=4000, attacked=True)


NAMED_SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "fig11": _fig11,
    "fig11-clean": _fig11_clean,
    "distributed-quick": _distributed_quick,
}


def named_scenario(name: str) -> Scenario:
    """Build the registered scenario, or raise ``KeyError`` with the
    available names in the message."""
    builder = NAMED_SCENARIOS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(named scenarios: {sorted(NAMED_SCENARIOS)})"
        )
    return builder()
