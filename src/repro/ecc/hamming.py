"""Extended-Hamming SECDED codec over plain integers.

Layout (classic extended Hamming):

* codeword bit indices ``0 .. n-2`` carry the Hamming code over 1-based
  positions ``1 .. n-1``;
* check bits live at the power-of-two positions ``1, 2, 4, ...``
  (0-based indices ``0, 1, 3, 7, ...``);
* data bits fill the remaining positions in ascending order;
* the final index ``n-1`` is the *extended* (overall) parity bit, making
  the total codeword parity even.

For 64 data bits this needs 7 Hamming check bits plus the extended bit:
a 72-bit codeword, matching the 64-bit flit + 8-bit ECC links that
switch-to-switch SECDED NoC papers assume.

Decoding classifies the received word:

``CLEAN``
    zero syndrome, even overall parity — deliver as-is.
``CORRECTED``
    a single-bit error was located and flipped (costs decoder energy —
    the receiver-side energy cost the paper mentions for transient
    faults).
``DETECTED``
    double-bit error — detected but uncorrectable, retransmission must
    be requested.  This is the response the TASP trojan farms.

Triple or wider errors may alias to ``CORRECTED`` with a wrong payload
(silent data corruption) exactly as real SECDED hardware would.

The hot path uses per-byte spread/gather lookup tables so encoding and
decoding cost a handful of table hits rather than 64 single-bit moves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.bits import mask, parity


class DecodeStatus(enum.Enum):
    """Outcome of decoding one received codeword."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected_uncorrectable"


@dataclass(frozen=True, slots=True)
class DecodeResult:
    """Decoder verdict for one codeword.

    Attributes
    ----------
    status:
        :class:`DecodeStatus` classification.
    data:
        The recovered data word.  For ``DETECTED`` this is the *best
        effort* extraction of the corrupt word and must not be consumed.
    syndrome:
        Raw Hamming syndrome (1-based error position for single errors,
        non-zero pattern for double errors) — recorded by the threat
        detector to correlate repeated faults.
    corrected_bit:
        Codeword bit index that was flipped for ``CORRECTED`` results,
        else ``None``.
    """

    status: DecodeStatus
    data: int
    syndrome: int
    corrected_bit: int | None = None

    @property
    def needs_retransmission(self) -> bool:
        return self.status is DecodeStatus.DETECTED


class Secded:
    """SECDED codec for a configurable data width (default 64 bits)."""

    def __init__(self, data_bits: int = 64):
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        self.check_bits = self._required_check_bits(data_bits)
        # Hamming span (without the extended bit): data + check positions.
        self._hamming_len = data_bits + self.check_bits
        # Total codeword width including the extended parity bit.
        self.codeword_bits = self._hamming_len + 1
        self._extended_index = self.codeword_bits - 1

        self._data_positions = self._compute_data_positions()
        self._check_positions = tuple(
            (1 << i) - 1 for i in range(self.check_bits)
        )
        self._parity_masks = self._compute_parity_masks()
        self._enc_tables = self._build_encode_tables()
        self._dec_tables = self._build_decode_tables()

    # ------------------------------------------------------------------
    @staticmethod
    def _required_check_bits(data_bits: int) -> int:
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    def _compute_data_positions(self) -> tuple[int, ...]:
        """0-based codeword indices of the data bits, ascending."""
        positions = []
        pos = 1  # 1-based Hamming position
        while len(positions) < self.data_bits:
            if pos & (pos - 1):  # not a power of two -> data position
                positions.append(pos - 1)
            pos += 1
        return tuple(positions)

    def _compute_parity_masks(self) -> tuple[int, ...]:
        """``masks[i]`` covers codeword indices whose 1-based position has
        bit ``i`` set (including the check bit itself)."""
        masks = []
        for i in range(self.check_bits):
            m = 0
            for idx in range(self._hamming_len):
                if (idx + 1) >> i & 1:
                    m |= 1 << idx
            masks.append(m)
        return tuple(masks)

    def _build_encode_tables(self) -> list[list[int]]:
        """Per-data-byte tables mapping byte value to its spread codeword
        bits *including* its XOR contribution to the check bits."""
        nbytes = (self.data_bits + 7) // 8
        tables: list[list[int]] = []
        for byte_idx in range(nbytes):
            table = [0] * 256
            base = byte_idx * 8
            span = min(8, self.data_bits - base)
            for value in range(256):
                cw = 0
                for j in range(span):
                    if value >> j & 1:
                        cw |= 1 << self._data_positions[base + j]
                # Fold this byte's check-bit contribution in directly so a
                # full encode is a pure XOR of table entries.
                for i, pmask in enumerate(self._parity_masks):
                    if parity(cw & pmask):
                        cw ^= 1 << self._check_positions[i]
                table[value] = cw
            tables.append(table)
        return tables

    def _build_decode_tables(self) -> list[list[int]]:
        """Per-codeword-byte tables gathering data bits back out."""
        nbytes = (self.codeword_bits + 7) // 8
        pos_to_databit = {
            cw_idx: data_idx
            for data_idx, cw_idx in enumerate(self._data_positions)
        }
        tables: list[list[int]] = []
        for byte_idx in range(nbytes):
            table = [0] * 256
            base = byte_idx * 8
            for value in range(256):
                out = 0
                for j in range(8):
                    cw_idx = base + j
                    if value >> j & 1 and cw_idx in pos_to_databit:
                        out |= 1 << pos_to_databit[cw_idx]
                table[value] = out
            tables.append(table)
        return tables

    # ------------------------------------------------------------------
    def encode(self, data: int) -> int:
        """Encode ``data`` into a codeword with even overall parity."""
        if data < 0 or data > mask(self.data_bits):
            raise ValueError(
                f"data {data:#x} does not fit in {self.data_bits} bits"
            )
        cw = 0
        for table in self._enc_tables:
            cw ^= table[data & 0xFF]
            data >>= 8
        if parity(cw):
            cw |= 1 << self._extended_index
        return cw

    def extract(self, codeword: int) -> int:
        """Gather the data bits out of ``codeword`` (no checking)."""
        out = 0
        for table in self._dec_tables:
            out |= table[codeword & 0xFF]
            codeword >>= 8
        return out

    def syndrome(self, codeword: int) -> int:
        """Hamming syndrome of ``codeword`` (0 if check bits agree)."""
        s = 0
        for i, pmask in enumerate(self._parity_masks):
            if parity(codeword & pmask):
                s |= 1 << i
        return s

    def decode(self, codeword: int) -> DecodeResult:
        """Classify and (when possible) correct ``codeword``."""
        if codeword < 0 or codeword > mask(self.codeword_bits):
            raise ValueError("codeword out of range")
        s = self.syndrome(codeword)
        overall = parity(codeword)

        if s == 0 and overall == 0:
            return DecodeResult(DecodeStatus.CLEAN, self.extract(codeword), 0)

        if s == 0 and overall == 1:
            # The extended parity bit itself flipped; data is intact.
            return DecodeResult(
                DecodeStatus.CORRECTED,
                self.extract(codeword),
                0,
                corrected_bit=self._extended_index,
            )

        if overall == 1:
            # Odd overall parity + non-zero syndrome: single-bit error at
            # 1-based position ``s`` (if it points inside the word).
            if 1 <= s <= self._hamming_len:
                fixed = codeword ^ (1 << (s - 1))
                return DecodeResult(
                    DecodeStatus.CORRECTED,
                    self.extract(fixed),
                    s,
                    corrected_bit=s - 1,
                )
            # Syndrome points outside the codeword: treat as detected.
            return DecodeResult(
                DecodeStatus.DETECTED, self.extract(codeword), s
            )

        # Non-zero syndrome with even overall parity: an even number of
        # errors (>= 2).  Detected, uncorrectable.
        return DecodeResult(DecodeStatus.DETECTED, self.extract(codeword), s)

    # ------------------------------------------------------------------
    def data_index_to_codeword_index(self, data_idx: int) -> int:
        """Codeword bit index carrying data bit ``data_idx``."""
        return self._data_positions[data_idx]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Secded(data_bits={self.data_bits}, "
            f"codeword_bits={self.codeword_bits})"
        )


#: Shared codec instance for the paper's 64-bit flits.
SECDED_72_64 = Secded(64)
