"""Vectorized SECDED over numpy arrays.

The scalar :class:`repro.ecc.hamming.Secded` is what the cycle loop
uses (one flit at a time); analysis workloads — scoring a whole trace's
codewords, sweeping millions of BIST patterns, computing alias rates —
want bulk throughput instead.  :class:`BatchSecded` implements the same
code over ``uint64``/``uint8`` arrays with numpy bit-twiddling: encode
spreads data bits through a boolean generator matrix, decode reduces
parity masks column-wise.  Property tests pin it bit-for-bit against
the scalar codec.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.hamming import Secded, SECDED_72_64


class BatchSecded:
    """Bulk encoder/decoder mirroring a scalar :class:`Secded`."""

    def __init__(self, scalar: Secded = SECDED_72_64):
        self.scalar = scalar
        n = scalar.codeword_bits
        k = scalar.data_bits

        # generator placement: data bit j -> codeword column pos[j]
        self._data_pos = np.array(
            [scalar.data_index_to_codeword_index(j) for j in range(k)],
            dtype=np.int64,
        )
        # parity masks as (check_bits, n) boolean matrix
        self._pmask = np.zeros((scalar.check_bits, n), dtype=bool)
        for i, mask in enumerate(scalar._parity_masks):
            for b in range(n):
                self._pmask[i, b] = bool(mask >> b & 1)
        self._check_pos = np.array(scalar._check_positions, dtype=np.int64)
        self._extended = scalar.codeword_bits - 1

    # -- bit matrix helpers ------------------------------------------------
    def _data_to_bits(self, data: np.ndarray) -> np.ndarray:
        """(N,) uint64 -> (N, k) bool."""
        data = np.asarray(data, dtype=np.uint64)
        shifts = np.arange(self.scalar.data_bits, dtype=np.uint64)
        return (data[:, None] >> shifts[None, :]) & np.uint64(1) != 0

    def _bits_to_ints(self, bits: np.ndarray) -> list[int]:
        """(N, n) bool -> list of Python ints (n can exceed 64)."""
        out = []
        weights = [1 << b for b in range(bits.shape[1])]
        for row in bits:
            value = 0
            for b in np.nonzero(row)[0]:
                value |= weights[b]
            out.append(value)
        return out

    def codeword_bits_matrix(self, data: np.ndarray) -> np.ndarray:
        """Encode to a (N, n) boolean codeword matrix."""
        data_bits = self._data_to_bits(data)
        n = self.scalar.codeword_bits
        cw = np.zeros((data_bits.shape[0], n), dtype=bool)
        cw[:, self._data_pos] = data_bits
        # check bits: parity over the masks (check positions are zero so
        # far, so the mask product equals the data contribution)
        for i in range(self.scalar.check_bits):
            parity = np.logical_and(cw, self._pmask[i][None, :]).sum(axis=1) & 1
            cw[:, self._check_pos[i]] = parity.astype(bool)
        # extended parity: make total parity even
        total = cw.sum(axis=1) & 1
        cw[:, self._extended] = total.astype(bool)
        return cw

    def encode(self, data: np.ndarray) -> list[int]:
        """Encode a uint64 array; returns Python-int codewords (72-bit
        values exceed uint64)."""
        return self._bits_to_ints(self.codeword_bits_matrix(data))

    # -- decode -----------------------------------------------------------
    def decode_bits(self, cw_bits: np.ndarray) -> dict[str, np.ndarray]:
        """Classify a (N, n) boolean codeword matrix.

        Returns arrays: ``syndrome`` (int), ``status`` (0 clean,
        1 corrected, 2 detected) and ``data`` (uint64, best effort).
        """
        cw = cw_bits.copy()
        n_words = cw.shape[0]
        syndrome = np.zeros(n_words, dtype=np.int64)
        for i in range(self.scalar.check_bits):
            parity = np.logical_and(cw, self._pmask[i][None, :]).sum(axis=1) & 1
            syndrome |= parity.astype(np.int64) << i
        overall = (cw.sum(axis=1) & 1).astype(bool)

        status = np.zeros(n_words, dtype=np.int8)
        hamming_len = self.scalar.codeword_bits - 1

        # single error: odd overall parity, syndrome points in range
        single = overall & (syndrome > 0) & (syndrome <= hamming_len)
        rows = np.nonzero(single)[0]
        cols = syndrome[rows] - 1
        cw[rows, cols] = ~cw[rows, cols]
        status[single] = 1
        # extended-bit flip: odd parity, zero syndrome
        ext_flip = overall & (syndrome == 0)
        cw[np.nonzero(ext_flip)[0], self._extended] = ~cw[
            np.nonzero(ext_flip)[0], self._extended
        ]
        status[ext_flip] = 1
        # detected: even overall parity with non-zero syndrome, or an
        # out-of-range single-error pointer
        detected = (~overall & (syndrome != 0)) | (
            overall & (syndrome > hamming_len)
        )
        status[detected] = 2

        data_bits = cw[:, self._data_pos]
        shifts = np.arange(self.scalar.data_bits, dtype=np.uint64)
        data = (
            data_bits.astype(np.uint64) << shifts[None, :]
        ).sum(axis=1, dtype=np.uint64)
        return {"syndrome": syndrome, "status": status, "data": data}

    def roundtrip_status(self, data: np.ndarray, flips: np.ndarray) -> np.ndarray:
        """Encode each word, XOR the given fault masks (as (N, n) bool),
        decode, and return the status array — the bulk primitive behind
        alias-rate and fault-classification sweeps."""
        cw = self.codeword_bits_matrix(data)
        return self.decode_bits(np.logical_xor(cw, flips))["status"]


#: shared bulk codec for the default 72,64 code
BATCH_SECDED = BatchSecded()
