"""Error-correction substrate: switch-to-switch link ECC.

The paper's attack hinges on a precise property of SECDED (single-error
correction, double-error detection) codes: one flipped bit is silently
corrected, two flipped bits are *detected but uncorrectable* and force a
retransmission.  :class:`repro.ecc.hamming.Secded` implements a
bit-accurate extended Hamming SECDED(72,64) codec so the trojan's 2-bit
payloads interact with the link exactly as in hardware.
"""

from repro.ecc.batch import BATCH_SECDED, BatchSecded
from repro.ecc.hamming import (
    DecodeResult,
    DecodeStatus,
    Secded,
    SECDED_72_64,
)

__all__ = [
    "BATCH_SECDED",
    "BatchSecded",
    "DecodeResult",
    "DecodeStatus",
    "Secded",
    "SECDED_72_64",
]
