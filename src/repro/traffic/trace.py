"""Trace capture and replay.

Fig. 10 compares mitigation schemes on *the same workload*: we first
materialize a trace (a deterministic list of timed packets), then replay
it against differently-configured networks, so any performance delta is
attributable to the mitigation, not to workload noise.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.network import TrafficSource


@dataclass
class Trace:
    """An immutable, replayable workload: packets sorted by cycle."""

    name: str
    packets: list[Packet] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.packets.sort(key=lambda p: (p.created_cycle, p.pkt_id))

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def duration(self) -> int:
        return self.packets[-1].created_cycle + 1 if self.packets else 0

    @property
    def total_flits(self) -> int:
        return sum(p.num_flits() for p in self.packets)

    def router_matrix(self, cfg: NoCConfig) -> list[list[int]]:
        """Router-to-router request counts (Fig. 1a)."""
        matrix = [[0] * cfg.num_routers for _ in range(cfg.num_routers)]
        for pkt in self.packets:
            src = cfg.router_of_core(pkt.src_core)
            dst = cfg.router_of_core(pkt.dst_core)
            matrix[src][dst] += 1
        return matrix

    def source_counts(self, cfg: NoCConfig) -> list[int]:
        """Packets sourced per router (Fig. 1b geographic hot spots)."""
        counts = [0] * cfg.num_routers
        for pkt in self.packets:
            counts[cfg.router_of_core(pkt.src_core)] += 1
        return counts


def record_trace(source, cfg: NoCConfig, duration: int, name: str) -> Trace:
    """Materialize ``duration`` cycles of a live TrafficSource."""
    packets: list[Packet] = []
    for cycle in range(duration):
        packets.extend(source.generate(cycle))
    return Trace(name=name, packets=packets)


class TraceReplaySource(TrafficSource):
    """Replays a :class:`Trace` (packets deep-copied so several replays
    never share mutable state)."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self._cursor = 0

    def generate(self, cycle: int) -> list[Packet]:
        out: list[Packet] = []
        packets = self.trace.packets
        while (
            self._cursor < len(packets)
            and packets[self._cursor].created_cycle <= cycle
        ):
            out.append(copy.deepcopy(packets[self._cursor]))
            self._cursor += 1
        return out

    def done(self, cycle: int) -> bool:
        return self._cursor >= len(self.trace.packets)

    def reset(self) -> None:
        self._cursor = 0
