"""Synthetic traffic patterns.

The standard NoC evaluation patterns, used by unit tests and ablation
benches.  Each pattern maps a source core to a destination-selection
rule; :class:`SyntheticSource` turns one into a Bernoulli-injection
:class:`repro.noc.network.TrafficSource`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.network import TrafficSource
from repro.util.rng import SeededStream

#: picks a destination core for a source core
PatternFn = Callable[[NoCConfig, int, SeededStream], int]


def uniform_random(cfg: NoCConfig, src: int, stream: SeededStream) -> int:
    dst = stream.randint(0, cfg.num_cores - 2)
    return dst if dst < src else dst + 1  # never self


def bit_complement(cfg: NoCConfig, src: int, stream: SeededStream) -> int:
    return (cfg.num_cores - 1) ^ src


def transpose(cfg: NoCConfig, src: int, stream: SeededStream) -> int:
    """Router-coordinate transpose; core index preserved within router."""
    router = cfg.router_of_core(src)
    x, y = cfg.router_xy(router)
    if cfg.mesh_width != cfg.mesh_height:
        raise ValueError("transpose needs a square mesh")
    dst_router = cfg.router_at(y, x)
    return cfg.core_of(dst_router, cfg.local_index(src))


def neighbor(cfg: NoCConfig, src: int, stream: SeededStream) -> int:
    """Next core (wraps around) — minimal-distance traffic."""
    return (src + 1) % cfg.num_cores


def hotspot(hotspot_cores: tuple[int, ...], fraction: float = 0.5) -> PatternFn:
    """A fraction of traffic goes to the given hotspot cores; the rest
    is uniform random."""
    if not hotspot_cores:
        raise ValueError("need at least one hotspot core")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")

    def pattern(cfg: NoCConfig, src: int, stream: SeededStream) -> int:
        if stream.chance(fraction):
            return stream.choice(hotspot_cores)
        return uniform_random(cfg, src, stream)

    return pattern


PATTERNS: dict[str, PatternFn] = {
    "uniform": uniform_random,
    "bit_complement": bit_complement,
    "transpose": transpose,
    "neighbor": neighbor,
}


@dataclass
class SyntheticConfig:
    """Bernoulli injection of ``pattern`` traffic."""

    #: packets per core per cycle (expected)
    injection_rate: float = 0.02
    #: payload words per packet (0 = single-flit packets)
    payload_words: int = 2
    #: stop generating after this cycle (None = run forever)
    duration: Optional[int] = None
    #: cap on generated packets (None = unlimited)
    max_packets: Optional[int] = None


class SyntheticSource(TrafficSource):
    """Bernoulli-injection synthetic traffic."""

    def __init__(
        self,
        cfg: NoCConfig,
        pattern: PatternFn,
        config: SyntheticConfig = SyntheticConfig(),
        seed: int = 0,
    ):
        self.cfg = cfg
        self.pattern = pattern
        self.config = config
        self.stream = SeededStream(seed, "synthetic")
        self._next_pkt_id = 0

    def generate(self, cycle: int) -> list[Packet]:
        if self.config.duration is not None and cycle >= self.config.duration:
            return []
        if (
            self.config.max_packets is not None
            and self._next_pkt_id >= self.config.max_packets
        ):
            return []
        out: list[Packet] = []
        for src in range(self.cfg.num_cores):
            if not self.stream.chance(self.config.injection_rate):
                continue
            dst = self.pattern(self.cfg, src, self.stream)
            if dst == src:
                continue
            out.append(
                Packet(
                    pkt_id=self._next_pkt_id,
                    src_core=src,
                    dst_core=dst,
                    vc_class=self.stream.randint(0, self.cfg.num_vcs - 1),
                    mem_addr=self.stream.bits(32),
                    payload=[self.stream.bits(self.cfg.flit_bits)
                             for _ in range(self.config.payload_words)],
                    created_cycle=cycle,
                )
            )
            self._next_pkt_id += 1
            if (
                self.config.max_packets is not None
                and self._next_pkt_id >= self.config.max_packets
            ):
                break
        return out

    def done(self, cycle: int) -> bool:
        if (
            self.config.max_packets is not None
            and self._next_pkt_id >= self.config.max_packets
        ):
            return True
        return self.config.duration is not None and cycle >= self.config.duration

    @property
    def packets_generated(self) -> int:
        return self._next_pkt_id
