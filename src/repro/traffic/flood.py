"""Flood-based DoS attack traffic (the prior-work threat model).

The related work the paper positions against ([12], [14]) uses *rogue
threads* that flood the network with junk traffic toward a victim
region to deplete bandwidth.  This module provides that attacker so the
benches can contrast it with the trojan-based DoS: a flood needs
compromised software and saturates links gradually; TASP needs two bit
flips per targeted flit and converts the network's own fault tolerance
into a hard stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.network import TrafficSource
from repro.util.rng import SeededStream


@dataclass(frozen=True)
class FloodConfig:
    """One flood attack: who floods whom, how hard, and when."""

    #: cores running the rogue threads
    rogue_cores: tuple[int, ...]
    #: cores being flooded (chosen uniformly per packet)
    victim_cores: tuple[int, ...]
    #: packets per rogue core per cycle (1.0 = inject at line rate)
    rate: float = 1.0
    payload_words: int = 3
    start_cycle: int = 0
    stop_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.rogue_cores:
            raise ValueError("need at least one rogue core")
        if not self.victim_cores:
            raise ValueError("need at least one victim core")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")


class FloodSource(TrafficSource):
    """Bandwidth-depletion attacker."""

    def __init__(self, cfg: NoCConfig, flood: FloodConfig, seed: int = 0,
                 pkt_id_base: int = 10_000_000):
        self.cfg = cfg
        self.flood = flood
        self.stream = SeededStream(seed, "flood")
        self._next_pkt_id = pkt_id_base
        self.packets_generated = 0

    def generate(self, cycle: int) -> list[Packet]:
        flood = self.flood
        if cycle < flood.start_cycle:
            return []
        if flood.stop_cycle is not None and cycle >= flood.stop_cycle:
            return []
        out: list[Packet] = []
        for core in flood.rogue_cores:
            if not self.stream.chance(flood.rate):
                continue
            victim = self.stream.choice(flood.victim_cores)
            if victim == core:
                continue
            out.append(
                Packet(
                    pkt_id=self._next_pkt_id,
                    src_core=core,
                    dst_core=victim,
                    vc_class=self.stream.randint(0, self.cfg.num_vcs - 1),
                    mem_addr=self.stream.bits(32),
                    payload=[
                        self.stream.bits(self.cfg.flit_bits)
                        for _ in range(flood.payload_words)
                    ],
                    created_cycle=cycle,
                )
            )
            self._next_pkt_id += 1
            self.packets_generated += 1
        return out

    def done(self, cycle: int) -> bool:
        return (
            self.flood.stop_cycle is not None
            and cycle >= self.flood.stop_cycle
        )

    def next_active_cycle(self, cycle: int) -> Optional[int]:
        """Idle until ``start_cycle`` (no packets, no RNG draws), every
        cycle inside the flood window, never again after stop.  The
        stop edge itself stays a candidate so drain detection observes
        :meth:`done` flipping at exactly the sweep engine's cycle."""
        flood = self.flood
        if self.done(cycle):
            return None
        if cycle < flood.start_cycle:
            if flood.stop_cycle is not None:
                return min(flood.start_cycle, flood.stop_cycle)
            return flood.start_cycle
        return cycle


class MergedSource(TrafficSource):
    """Superpose several traffic sources (e.g. application + flood)."""

    def __init__(self, sources: Sequence[TrafficSource]):
        if not sources:
            raise ValueError("need at least one source")
        self.sources = list(sources)

    def generate(self, cycle: int) -> list[Packet]:
        out: list[Packet] = []
        for source in self.sources:
            out.extend(source.generate(cycle))
        return out

    def done(self, cycle: int) -> bool:
        return all(source.done(cycle) for source in self.sources)

    def next_active_cycle(self, cycle: int) -> Optional[int]:
        best: Optional[int] = None
        for source in self.sources:
            when = source.next_active_cycle(cycle)
            if when is not None and (best is None or when < best):
                best = when
        return best
