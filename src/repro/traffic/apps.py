"""Synthetic PARSEC/SPLASH-2-like application traffic profiles.

**Substitution notice (see DESIGN.md §2).**  The paper replays traces
captured from PARSEC (Blackscholes, Facesim, Ferret) and SPLASH-2 (FFT)
runs on a 64-core CMP.  Those traces are not redistributable, so this
module generates *synthetic* traces with the structural properties the
paper reports and exploits:

* **localization around a few primary routers** — "a trend we found
  consistent with most of the benchmarks is the localization around a
  few cores/routers acting as the primary core, like router zero";
* **distance decay** — "traffic load caused by that application
  benchmark diminishes as the distance from the main core increases";
* **request/reply structure** — single-flit requests answered by
  multi-flit replies, so link load is asymmetric;
* per-application shape parameters (primary cores, decay strength,
  injection rate, reply size) chosen to differentiate the four
  workloads the paper plots in Fig. 10.

Every profile is seeded and deterministic, so attack/mitigation
comparisons replay identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.network import TrafficSource
from repro.util.rng import SeededStream


@dataclass(frozen=True)
class AppProfile:
    """Shape parameters of one synthetic application."""

    name: str
    #: routers hosting the primary (hot) cores, with relative weights
    primary_routers: tuple[tuple[int, float], ...]
    #: exponential decay of traffic weight per hop away from a primary
    distance_decay: float
    #: expected packets per core per cycle
    injection_rate: float
    #: fraction of packets that are multi-flit replies
    reply_fraction: float
    #: payload words in a reply packet
    reply_words: int = 3
    #: base of the memory-address region the app touches
    mem_base: int = 0x1000_0000
    #: weight floor so every pair sees some background traffic
    background: float = 0.02


#: The four applications of Fig. 10, plus the Fig. 1 subject.
PROFILES: dict[str, AppProfile] = {
    # Strong single hot router (the paper shows clear peaks and valleys
    # around router 0 for Blackscholes).
    "blackscholes": AppProfile(
        name="blackscholes",
        primary_routers=((0, 1.0),),
        distance_decay=0.55,
        injection_rate=0.012,
        reply_fraction=0.5,
        mem_base=0x1000_0000,
    ),
    # Physics solver: two cooperating hot regions, gentler decay.
    "facesim": AppProfile(
        name="facesim",
        primary_routers=((0, 0.6), (10, 0.4)),
        distance_decay=0.7,
        injection_rate=0.016,
        reply_fraction=0.6,
        reply_words=4,
        mem_base=0x2000_0000,
    ),
    # Pipeline-parallel: a chain of stage hotspots across the chip.
    "ferret": AppProfile(
        name="ferret",
        primary_routers=((0, 0.35), (5, 0.25), (10, 0.25), (15, 0.15)),
        distance_decay=0.8,
        injection_rate=0.02,
        reply_fraction=0.4,
        mem_base=0x3000_0000,
    ),
    # Butterfly all-to-all phases: weak localization, widest spread.
    "fft": AppProfile(
        name="fft",
        primary_routers=((0, 0.5), (15, 0.5)),
        distance_decay=0.9,
        injection_rate=0.024,
        reply_fraction=0.5,
        reply_words=2,
        mem_base=0x4000_0000,
    ),
    # Data-parallel body tracking: one hot region feeding worker tiles.
    "bodytrack": AppProfile(
        name="bodytrack",
        primary_routers=((5, 1.0),),
        distance_decay=0.6,
        injection_rate=0.014,
        reply_fraction=0.55,
        reply_words=3,
        mem_base=0x5000_0000,
    ),
    # Cache-unfriendly graph annealing: near-uniform, long-range pairs.
    "canneal": AppProfile(
        name="canneal",
        primary_routers=((3, 0.3), (6, 0.4), (12, 0.3)),
        distance_decay=0.95,
        injection_rate=0.028,
        reply_fraction=0.3,
        reply_words=2,
        background=0.08,
        mem_base=0x6000_0000,
    ),
    # Embarrassingly-parallel pricing: tiny communication, one master.
    "swaptions": AppProfile(
        name="swaptions",
        primary_routers=((0, 1.0),),
        distance_decay=0.45,
        injection_rate=0.006,
        reply_fraction=0.7,
        reply_words=2,
        mem_base=0x7000_0000,
    ),
    # SPLASH-2 LU: blocked matrix factorization, diagonal hot wavefront.
    "lu": AppProfile(
        name="lu",
        primary_routers=((0, 0.4), (5, 0.3), (10, 0.2), (15, 0.1)),
        distance_decay=0.75,
        injection_rate=0.018,
        reply_fraction=0.6,
        reply_words=4,
        mem_base=0x8000_0000,
    ),
    # SPLASH-2 radix sort: bursty all-to-all key exchange.
    "radix": AppProfile(
        name="radix",
        primary_routers=((2, 0.25), (7, 0.25), (8, 0.25), (13, 0.25)),
        distance_decay=0.92,
        injection_rate=0.026,
        reply_fraction=0.4,
        reply_words=3,
        background=0.06,
        mem_base=0x9000_0000,
    ),
    # Streaming media deduplication: producer/consumer pipeline pair.
    "dedup": AppProfile(
        name="dedup",
        primary_routers=((4, 0.55), (11, 0.45)),
        distance_decay=0.68,
        injection_rate=0.02,
        reply_fraction=0.45,
        reply_words=3,
        mem_base=0xA000_0000,
    ),
}


def traffic_weights(
    cfg: NoCConfig, profile: AppProfile
) -> dict[tuple[int, int], float]:
    """Router-to-router traffic weight matrix for a profile.

    ``weight(s, d)`` combines the primary-router pull on both endpoints
    with exponential distance decay, matching the Fig. 1(a) structure:
    rows/columns near primary routers dominate, and weight falls off
    with hop distance from the primaries.
    """
    pull = [profile.background] * cfg.num_routers
    for router in range(cfg.num_routers):
        for primary, weight in profile.primary_routers:
            dist = cfg.hop_distance(router, primary)
            pull[router] += weight * (profile.distance_decay ** dist)

    weights: dict[tuple[int, int], float] = {}
    for src in range(cfg.num_routers):
        for dst in range(cfg.num_routers):
            if src == dst:
                continue
            w = pull[src] * pull[dst]
            # communication also decays with src-dst separation
            w *= profile.distance_decay ** (
                0.5 * cfg.hop_distance(src, dst)
            )
            weights[(src, dst)] = w
    return weights


class AppTraceSource(TrafficSource):
    """Generates a profile's traffic live (Bernoulli per core, destination
    drawn from the weight matrix)."""

    def __init__(
        self,
        cfg: NoCConfig,
        profile: AppProfile,
        seed: int = 0,
        duration: Optional[int] = None,
        max_packets: Optional[int] = None,
        cores: Optional[set[int]] = None,
        domain: int = 0,
        vc_classes: Optional[tuple[int, ...]] = None,
        pkt_id_base: int = 0,
    ):
        """``cores``/``domain``/``vc_classes`` support the TDM experiment:
        an application pinned to a core subset, tagged with its domain,
        drawing VCs from its domain's partition."""
        self.cfg = cfg
        self.profile = profile
        self.duration = duration
        self.max_packets = max_packets
        self.cores = cores
        self.domain = domain
        self.vc_classes = vc_classes or tuple(range(cfg.num_vcs))
        self.stream = SeededStream(seed, "app", profile.name)
        self._next_pkt_id = pkt_id_base
        self._pkt_id_base = pkt_id_base

        weights = traffic_weights(cfg, profile)
        # Per-source-router total weight -> per-core injection scaling.
        row_totals = [0.0] * cfg.num_routers
        for (src, _dst), w in weights.items():
            row_totals[src] += w
        mean_row = sum(row_totals) / cfg.num_routers
        self._rate_per_core = [
            profile.injection_rate * row_totals[cfg.router_of_core(core)] / mean_row
            for core in range(cfg.num_cores)
        ]
        # Per-source destination routers + weights for sampling.
        self._dst_choices: list[tuple[list[int], list[float]]] = []
        for src in range(cfg.num_routers):
            dsts = [d for d in range(cfg.num_routers) if d != src]
            self._dst_choices.append(
                (dsts, [weights[(src, d)] for d in dsts])
            )

    # ------------------------------------------------------------------
    def make_packet(self, src_core: int, cycle: int) -> Packet:
        cfg = self.cfg
        src_router = cfg.router_of_core(src_core)
        dsts, ws = self._dst_choices[src_router]
        dst_router = self.stream.weighted_choice(dsts, ws)
        dst_core = cfg.core_of(
            dst_router, self.stream.randint(0, cfg.concentration - 1)
        )
        is_reply = self.stream.chance(self.profile.reply_fraction)
        payload = (
            [self.stream.bits(cfg.flit_bits)
             for _ in range(self.profile.reply_words)]
            if is_reply
            else []
        )
        pkt = Packet(
            pkt_id=self._next_pkt_id,
            src_core=src_core,
            dst_core=dst_core,
            vc_class=self.stream.choice(self.vc_classes),
            mem_addr=(self.profile.mem_base + self.stream.bits(16)) & 0xFFFFFFFF,
            payload=payload,
            created_cycle=cycle,
            domain=self.domain,
        )
        self._next_pkt_id += 1
        return pkt

    def generate(self, cycle: int) -> list[Packet]:
        if self.done(cycle):
            return []
        out: list[Packet] = []
        for core in range(self.cfg.num_cores):
            if self.cores is not None and core not in self.cores:
                continue
            if self.stream.chance(self._rate_per_core[core]):
                out.append(self.make_packet(core, cycle))
                if (
                    self.max_packets is not None
                    and self.packets_generated >= self.max_packets
                ):
                    break
        return out

    def done(self, cycle: int) -> bool:
        if (
            self.max_packets is not None
            and self.packets_generated >= self.max_packets
        ):
            return True
        return self.duration is not None and cycle >= self.duration

    @property
    def packets_generated(self) -> int:
        return self._next_pkt_id - self._pkt_id_base
