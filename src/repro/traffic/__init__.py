"""Workload substrate: synthetic patterns and application-like traces.

Real PARSEC/SPLASH-2 traces are replaced by seeded synthetic profiles
with the same structural properties (see DESIGN.md §2 and
:mod:`repro.traffic.apps`).
"""

from repro.traffic.flood import FloodConfig, FloodSource, MergedSource
from repro.traffic.apps import (
    AppProfile,
    AppTraceSource,
    PROFILES,
    traffic_weights,
)
from repro.traffic.synthetic import (
    PATTERNS,
    SyntheticConfig,
    SyntheticSource,
    bit_complement,
    hotspot,
    neighbor,
    transpose,
    uniform_random,
)
from repro.traffic.trace import Trace, TraceReplaySource, record_trace

__all__ = [
    "FloodConfig",
    "FloodSource",
    "MergedSource",
    "AppProfile",
    "AppTraceSource",
    "PROFILES",
    "traffic_weights",
    "PATTERNS",
    "SyntheticConfig",
    "SyntheticSource",
    "bit_complement",
    "hotspot",
    "neighbor",
    "transpose",
    "uniform_random",
    "Trace",
    "TraceReplaySource",
    "record_trace",
]
