"""The TASP hardware trojan (paper §III).

Target-Activated Sequential-Payload: a light-weight trojan implanted on
a link, built from three components (Fig. 3):

1. a **target block** — comparators performing deep packet inspection
   on a fraction of the link wires (:class:`repro.core.targets.TargetSpec`);
2. a **Y-bit payload counter** — an FSM whose states are two-hot
   patterns; each triggered traversal injects the current pattern and
   *holds* state until the next trigger, both to save power and to keep
   faults from repeating on the same wires (disguising them as
   transients so fault-tolerance logic never condemns the link);
3. an **XOR tree** that flips the selected wires.

Exactly two bits are flipped because the attacker knows the link ECC is
SECDED: two flips are always detected, never corrected — every trigger
converts to a retransmission, and a persistently-targeted flit converts
to a pinned retransmission slot and, eventually, chip-scale deadlock.

Gating: the trojan needs *both* an externally driven kill switch and a
target match before it acts, so logic testing in verification (kill
switch off) can never expose it.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.targets import TargetSpec
from repro.ecc import SECDED_72_64, Secded
from repro.noc.flit import HeaderLayout, PAPER_LAYOUT
from repro.util.rng import SeededStream


class TaspState(enum.Enum):
    """Fig. 3 FSM states."""

    IDLE = "idle"          # kill switch off: dormant
    ACTIVE = "active"      # enabled, scanning for the target
    ATTACKING = "attacking"  # target seen at least once; payload armed


@dataclass(frozen=True)
class TaspConfig:
    """Design-time parameters of one TASP instance."""

    #: payload-counter width Y: the FSM selects wire subsets of these
    y_bits: int = 8
    #: number of payload states the FSM cycles through (PL0..PLn-1);
    #: more states spread faults wider but cost flip-flops/power
    num_payload_states: int = 4
    #: explicit codeword wire indices the Y FSM taps (len == y_bits);
    #: default spreads them evenly across the link
    wires: Optional[tuple[int, ...]] = None
    #: bits flipped per trigger.  The paper's attacker uses exactly 2
    #: because the link ECC is SECDED: 1 flip is silently corrected,
    #: 2 flips force a retransmission (the DoS), 3+ flips may
    #: miscorrect into silent data corruption — the payload-weight
    #: ablation measures all three regimes.
    payload_weight: int = 2
    #: seed for the (design-time) choice of payload patterns
    seed: int = 0

    def __post_init__(self) -> None:
        if self.payload_weight < 1:
            raise ValueError("payload_weight must be at least 1")
        if self.y_bits < self.payload_weight:
            raise ValueError("payload counter needs >= payload_weight wires")
        max_states = math.comb(self.y_bits, self.payload_weight)
        if not 1 <= self.num_payload_states <= max_states:
            raise ValueError(
                f"num_payload_states must be in 1..{max_states} for "
                f"y_bits={self.y_bits}, weight={self.payload_weight}"
            )
        if self.wires is not None and len(self.wires) != self.y_bits:
            raise ValueError("wires must list exactly y_bits indices")


class TaspTrojan:
    """A TASP instance attached to one link (implements the
    :class:`repro.faults.models.LinkTamperer` protocol)."""

    def __init__(
        self,
        target: TargetSpec,
        config: TaspConfig = TaspConfig(),
        codec: Secded = SECDED_72_64,
        layout: HeaderLayout = PAPER_LAYOUT,
    ):
        self.target = target
        self.config = config
        self.codec = codec
        #: wire layout the comparators are tuned for (the attacker knows
        #: the mesh's header format at design time)
        self.layout = layout

        width = codec.codeword_bits
        if config.wires is not None:
            wires = list(config.wires)
            if any(not 0 <= w < width for w in wires):
                raise ValueError("payload wire index outside the link")
        else:
            # Spread the Y tapped wires evenly across the codeword.
            step = width / config.y_bits
            wires = [int(i * step) for i in range(config.y_bits)]
        self.payload_wires = tuple(wires)

        # Design-time payload schedule: a deterministic, seeded walk over
        # distinct weight-hot patterns of the Y wires (weight 2 for the
        # paper's SECDED-aware attacker).
        stream = SeededStream(config.seed, "tasp-payload")
        combos = list(
            itertools.combinations(range(config.y_bits), config.payload_weight)
        )
        stream.shuffle(combos)
        masks = []
        for combo in combos[: config.num_payload_states]:
            mask = 0
            for idx in combo:
                mask |= 1 << self.payload_wires[idx]
            masks.append(mask)
        self.payload_masks = tuple(masks)

        self.kill_switch = False
        self._seen_target = False
        self.payload_index = 0
        # -- observability ------------------------------------------------
        # .. deprecated:: read these through the metrics registry
        #    (``repro.obs.collectors.collect_trojans`` publishes them
        #    as ``trojan_*`` series); raw attributes are the mutation
        #    site only.
        self.flits_inspected = 0
        self.triggers = 0
        self.faults_injected = 0

    # -- control ----------------------------------------------------------
    def enable(self) -> None:
        """Assert the external kill switch (begin the attack)."""
        self.kill_switch = True

    def disable(self) -> None:
        """Deassert the kill switch; the trojan goes dormant."""
        self.kill_switch = False
        self._seen_target = False

    @property
    def state(self) -> TaspState:
        if not self.kill_switch:
            return TaspState.IDLE
        return TaspState.ATTACKING if self._seen_target else TaspState.ACTIVE

    # -- LinkTamperer -------------------------------------------------------
    def tamper(self, codeword: int, cycle: int) -> int:
        if not self.kill_switch:
            return codeword
        self.flits_inspected += 1
        # The comparator taps the wires carrying the header fields; we
        # model the tap by extracting the data image from the codeword.
        wire_image = self.codec.extract(codeword)
        if not self.target.matches(wire_image, self.layout):
            return codeword
        self._seen_target = True
        self.triggers += 1
        payload = self.payload_masks[self.payload_index]
        # Advance to the next payload state *after* injecting, holding
        # between triggers (Fig. 3: state held while target absent).
        self.payload_index = (self.payload_index + 1) % len(self.payload_masks)
        self.faults_injected += 1
        return codeword ^ payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaspTrojan(target={self.target.kind}, state={self.state.value}, "
            f"triggers={self.triggers})"
        )
