"""The paper's primary contribution.

* :mod:`repro.core.targets` / :mod:`repro.core.tasp` — the TASP
  hardware-trojan threat model (attack side);
* :mod:`repro.core.detector` — the heuristic threat source detector;
* :mod:`repro.core.lob` — L-Ob switch-to-switch obfuscation;
* :mod:`repro.core.mitigation` — both wired into the router datapath.
"""

from repro.core.attacker import AttackPlan, compare_targets, plan_attack, victim_flow_volumes
from repro.core.detector import (
    DetectorConfig,
    FaultRecord,
    LinkVerdict,
    ThreatDetector,
)
from repro.core.lob import (
    DEFAULT_METHOD_SEQUENCE,
    Granularity,
    LObCodec,
    LObEncoder,
    ObDescriptor,
    ObMethod,
    PENALTY_CYCLES,
)
from repro.core.migration import (
    MigratedSource,
    MigrationError,
    MigrationPlan,
    plan_migration,
)
from repro.core.mitigation import (
    DetectingReceiver,
    MitigationConfig,
    build_mitigated_network,
)
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.telemetry import (
    LinkSecurityStatus,
    ResilienceReport,
    SecurityReport,
    resilience_report,
    security_report,
)
from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig, TaspState, TaspTrojan

__all__ = [
    "AttackPlan",
    "compare_targets",
    "plan_attack",
    "victim_flow_volumes",
    "DetectorConfig",
    "FaultRecord",
    "LinkVerdict",
    "ThreatDetector",
    "DEFAULT_METHOD_SEQUENCE",
    "Granularity",
    "LObCodec",
    "LObEncoder",
    "ObDescriptor",
    "ObMethod",
    "PENALTY_CYCLES",
    "MigratedSource",
    "MigrationError",
    "MigrationPlan",
    "plan_migration",
    "DetectingReceiver",
    "MitigationConfig",
    "build_mitigated_network",
    "LinkSecurityStatus",
    "ResilienceReport",
    "SecurityReport",
    "resilience_report",
    "security_report",
    "RecoveryManager",
    "RecoveryReport",
    "TargetSpec",
    "TaspConfig",
    "TaspState",
    "TaspTrojan",
]
