"""Attacker-side planning (paper §III-A).

The paper devotes a section to the *attacker's* design space: where to
implant TASP, how many instances, and which target to compare —
balancing attack potency against the risks of side-channel detection
(area/power footprint) and accidental triggering:

* "choosing a few links in x-dimension or y-dimension a few hops away
  from the targeted core(s) should be sufficient to disrupt execution";
* "the number of TASP HT injections should be minimized to circumvent
  side-channel detection, but enough to achieve the desired disruption";
* narrow targets are cheap but risk "masking an unintended target".

:func:`plan_attack` turns that analysis into an optimizer: given the
victim's traffic structure it selects the smallest link set covering the
victim's flows and reports the implant's silicon footprint and stealth
metrics, so the trade-offs of Table I / Fig. 9 can be explored as an
attacker would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.noc.config import NoCConfig
from repro.noc.topology import LinkKey, links_on_xy_path
from repro.power.blocks import router_breakdown, tasp_budget
from repro.power.gates import Budget


@dataclass(frozen=True)
class AttackPlan:
    """A concrete implant proposal with its cost/stealth accounting."""

    target: TargetSpec
    links: tuple[LinkKey, ...]
    #: fraction of the victim's flow volume crossing at least one
    #: infected link (the probability a victim packet gets corrupted)
    coverage: float
    #: total silicon footprint of all implants
    footprint: Budget
    #: implant dynamic power as a fraction of one router's
    footprint_vs_router: float
    #: probability a random payload word mis-triggers the comparator
    accidental_trigger_rate: float

    @property
    def num_implants(self) -> int:
        return len(self.links)


def victim_flow_volumes(
    cfg: NoCConfig,
    flows: Sequence[tuple[int, int, float]],
) -> dict[LinkKey, float]:
    """Per-link victim-flow volume under xy routing.

    ``flows`` are (src_router, dst_router, weight) triples — e.g. the
    rows/columns of the Fig. 1 traffic matrix belonging to the victim
    application.
    """
    loads: dict[LinkKey, float] = {}
    for src, dst, weight in flows:
        for key in links_on_xy_path(cfg, src, dst):
            loads[key] = loads.get(key, 0.0) + weight
    return loads


def plan_attack(
    cfg: NoCConfig,
    flows: Sequence[tuple[int, int, float]],
    target: TargetSpec,
    coverage_goal: float = 0.9,
    max_implants: int = 8,
    tasp_config: TaspConfig = TaspConfig(),
    forbidden_links: Iterable[LinkKey] = (),
) -> AttackPlan:
    """Greedy minimum-implant plan reaching ``coverage_goal``.

    Classic set-cover greedy: repeatedly infect the link carrying the
    most not-yet-covered victim volume.  Raises ``ValueError`` when the
    goal is unreachable within ``max_implants`` (e.g. the victim's
    flows are too spread out — the paper's argument for why localized
    applications like Blackscholes are the attractive victims).
    """
    if not flows:
        raise ValueError("need at least one victim flow")
    if not 0.0 < coverage_goal <= 1.0:
        raise ValueError("coverage_goal must be in (0, 1]")
    forbidden = set(forbidden_links)

    total = sum(weight for _, _, weight in flows)
    if total <= 0:
        raise ValueError("victim flows carry no volume")
    remaining = [
        (src, dst, weight)
        for src, dst, weight in flows
        if src != dst and weight > 0
    ]
    chosen: list[LinkKey] = []
    covered = total - sum(w for _, _, w in remaining)

    while remaining and covered / total < coverage_goal - 1e-9:
        if len(chosen) >= max_implants:
            raise ValueError(
                f"coverage goal {coverage_goal:.0%} unreachable with "
                f"{max_implants} implants (got {covered / total:.0%})"
            )
        loads = victim_flow_volumes(cfg, remaining)
        for key in forbidden | set(chosen):
            loads.pop(key, None)
        if not loads:
            raise ValueError("remaining flows traverse no usable link")
        best = max(loads, key=loads.get)
        chosen.append(best)
        still = []
        for src, dst, weight in remaining:
            if best in links_on_xy_path(cfg, src, dst):
                covered += weight
            else:
                still.append((src, dst, weight))
        remaining = still

    per_implant = tasp_budget(target, tasp_config)
    footprint = Budget()
    for _ in chosen:
        footprint.add(per_implant.scaled(1.0))
    footprint.delay_ns = per_implant.delay_ns
    router = router_breakdown(cfg).total
    return AttackPlan(
        target=target,
        links=tuple(chosen),
        coverage=covered / total,
        footprint=footprint,
        footprint_vs_router=(
            footprint.dynamic_uw / router.dynamic_uw if chosen else 0.0
        ),
        accidental_trigger_rate=target.random_match_probability(),
    )


def compare_targets(
    cfg: NoCConfig,
    flows: Sequence[tuple[int, int, float]],
    targets: dict[str, TargetSpec],
    coverage_goal: float = 0.9,
    max_implants: int = 8,
) -> dict[str, AttackPlan]:
    """Plan the same campaign under several target choices (the
    attacker's Table I study)."""
    plans = {}
    for name, target in targets.items():
        plans[name] = plan_attack(
            cfg, flows, target,
            coverage_goal=coverage_goal, max_implants=max_implants,
        )
    return plans
