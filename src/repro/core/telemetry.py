"""Chip-level security telemetry.

Aggregates every per-link threat detector and L-Ob encoder into one
security posture report — what a runtime monitor (or the OS deciding
between L-Ob, rerouting and migration) would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.detector import LinkVerdict
from repro.core.lob import ObMethod
from repro.noc.network import Network
from repro.noc.topology import LinkKey


@dataclass(frozen=True)
class LinkSecurityStatus:
    """One link's security posture."""

    link: LinkKey
    verdict: LinkVerdict
    faults_observed: int
    obfuscation_successes: int
    bist_scans: int
    #: corrupted traversals seen on the wire (ground truth the monitor
    #: does not have in hardware; exposed for evaluation)
    corrupted_traversals: int


@dataclass(frozen=True)
class SecurityReport:
    """Chip-wide aggregate."""

    links: dict[LinkKey, LinkSecurityStatus]
    obfuscated_sends: dict[ObMethod, int]
    preemptive_sends: int

    @property
    def suspicious_links(self) -> list[LinkKey]:
        return sorted(
            key
            for key, status in self.links.items()
            if status.verdict in (LinkVerdict.TROJAN, LinkVerdict.PERMANENT)
        )

    @property
    def trojan_links(self) -> list[LinkKey]:
        return sorted(
            key
            for key, status in self.links.items()
            if status.verdict is LinkVerdict.TROJAN
        )

    @property
    def permanent_links(self) -> list[LinkKey]:
        return sorted(
            key
            for key, status in self.links.items()
            if status.verdict is LinkVerdict.PERMANENT
        )

    @property
    def total_faults(self) -> int:
        return sum(s.faults_observed for s in self.links.values())

    def summary(self) -> str:
        lines = [
            f"security report: {len(self.links)} monitored links, "
            f"{self.total_faults} faults observed",
        ]
        for key in self.suspicious_links:
            status = self.links[key]
            lines.append(
                f"  link {key[0]:2d}->{key[1].name:5s}: "
                f"{status.verdict.value:9s} "
                f"({status.faults_observed} faults, "
                f"{status.obfuscation_successes} obfuscation successes, "
                f"{status.bist_scans} BIST scans)"
            )
        if not self.suspicious_links:
            lines.append("  no condemned links")
        ob_total = sum(self.obfuscated_sends.values())
        if ob_total:
            methods = ", ".join(
                f"{m.value}={n}"
                for m, n in self.obfuscated_sends.items()
                if n
            )
            lines.append(
                f"  L-Ob traffic: {ob_total} obfuscated sends "
                f"({methods}); {self.preemptive_sends} preemptive"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ResilienceReport:
    """Degradation / watchdog posture of one network.

    Unlike :func:`security_report` this works on *any* network — the
    counters come from :class:`repro.noc.stats.NetworkStats` and the
    (optional) watchdog, not from the mitigation's detectors.
    """

    degraded_flits: int
    degraded_packets: int
    packets_resubmitted: int
    retrans_backoffs: int
    lob_escalations: int
    #: ports whose oldest retransmission entry exceeds the pin window
    pinned_ports: tuple[tuple[LinkKey, int], ...]
    condemned_links: tuple[LinkKey, ...]
    watchdog_drops: int
    watchdog_backoffs: int
    watchdog_obfuscations: int

    def summary(self) -> str:
        lines = [
            "resilience report: "
            f"{self.degraded_packets} packets degraded "
            f"({self.degraded_flits} flits), "
            f"{self.packets_resubmitted} resubmitted end-to-end",
            f"  ladder: {self.retrans_backoffs} backoffs, "
            f"{self.lob_escalations} obfuscation escalations, "
            f"{len(self.condemned_links)} condemned link(s)",
        ]
        for key, age in self.pinned_ports:
            lines.append(
                f"  pinned: link {key[0]:2d}->{key[1].name:5s} "
                f"oldest entry {age} cycles"
            )
        if not self.pinned_ports:
            lines.append("  no pinned ports")
        return "\n".join(lines)


def resilience_report(
    network: Network, watchdog=None, pin_window: int = 100
) -> ResilienceReport:
    """Collect the degradation posture of any network (mitigated or
    not); pass the attached watchdog for its ladder counters."""
    pinned = tuple(
        (key, age)
        for key, link in network.links.items()
        if (
            age := network.output_port_of(key).retrans.oldest_wait(
                network.cycle
            )
        )
        > pin_window
    )
    stats = network.stats
    return ResilienceReport(
        degraded_flits=stats.degraded_flits,
        degraded_packets=stats.degraded_packets,
        packets_resubmitted=stats.packets_resubmitted,
        retrans_backoffs=stats.retrans_backoffs,
        lob_escalations=stats.lob_escalations,
        pinned_ports=pinned,
        condemned_links=tuple(
            key for key, link in network.links.items() if link.disabled
        ),
        watchdog_drops=(
            watchdog.packets_dropped if watchdog is not None else 0
        ),
        watchdog_backoffs=(
            watchdog.backoffs_applied if watchdog is not None else 0
        ),
        watchdog_obfuscations=(
            watchdog.obfuscations_forced if watchdog is not None else 0
        ),
    )


def security_report(network: Network) -> SecurityReport:
    """Collect the posture of a mitigated network.

    Raises ``ValueError`` when the network has no threat detectors
    (built without :func:`repro.core.build_mitigated_network`).

    This is a thin adapter over
    :func:`repro.obs.collectors.collect_security` — the metrics
    registry is the single source of truth for the security posture,
    and this function merely reshapes one snapshot of it into the
    report dataclasses.
    """
    from repro.obs.collectors import collect_security, parse_link_label

    snapshot = collect_security(network).snapshot()

    def series(name: str) -> list[dict]:
        return snapshot.get(name, {}).get("series", [])

    def per_link(name: str) -> dict[LinkKey, int]:
        return {
            parse_link_label(child["labels"]["link"]): child["value"]
            for child in series(name)
        }

    faults = per_link("detector_faults_observed")
    ob_successes = per_link("detector_obfuscation_successes")
    bist = per_link("detector_bist_scans")
    corrupted = per_link("link_corrupted_traversals")
    verdicts = {
        parse_link_label(child["labels"]["link"]): LinkVerdict(
            child["labels"]["verdict"]
        )
        for child in series("detector_verdict")
    }
    links = {
        key: LinkSecurityStatus(
            link=key,
            verdict=verdict,
            faults_observed=faults[key],
            obfuscation_successes=ob_successes[key],
            bist_scans=bist[key],
            corrupted_traversals=corrupted[key],
        )
        for key, verdict in verdicts.items()
    }
    ob_sends: dict[ObMethod, int] = {m: 0 for m in ObMethod}
    for child in series("lob_obfuscated_sends"):
        ob_sends[ObMethod(child["labels"]["method"])] += child["value"]
    return SecurityReport(
        links=links,
        obfuscated_sends=ob_sends,
        preemptive_sends=sum(
            child["value"] for child in series("lob_preemptive_sends")
        ),
    )
