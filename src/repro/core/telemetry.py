"""Chip-level security telemetry.

Aggregates every per-link threat detector and L-Ob encoder into one
security posture report — what a runtime monitor (or the OS deciding
between L-Ob, rerouting and migration) would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.detector import LinkVerdict
from repro.core.lob import ObMethod
from repro.core.mitigation import DetectingReceiver
from repro.noc.network import Network
from repro.noc.topology import LinkKey


@dataclass(frozen=True)
class LinkSecurityStatus:
    """One link's security posture."""

    link: LinkKey
    verdict: LinkVerdict
    faults_observed: int
    obfuscation_successes: int
    bist_scans: int
    #: corrupted traversals seen on the wire (ground truth the monitor
    #: does not have in hardware; exposed for evaluation)
    corrupted_traversals: int


@dataclass(frozen=True)
class SecurityReport:
    """Chip-wide aggregate."""

    links: dict[LinkKey, LinkSecurityStatus]
    obfuscated_sends: dict[ObMethod, int]
    preemptive_sends: int

    @property
    def suspicious_links(self) -> list[LinkKey]:
        return sorted(
            key
            for key, status in self.links.items()
            if status.verdict in (LinkVerdict.TROJAN, LinkVerdict.PERMANENT)
        )

    @property
    def trojan_links(self) -> list[LinkKey]:
        return sorted(
            key
            for key, status in self.links.items()
            if status.verdict is LinkVerdict.TROJAN
        )

    @property
    def permanent_links(self) -> list[LinkKey]:
        return sorted(
            key
            for key, status in self.links.items()
            if status.verdict is LinkVerdict.PERMANENT
        )

    @property
    def total_faults(self) -> int:
        return sum(s.faults_observed for s in self.links.values())

    def summary(self) -> str:
        lines = [
            f"security report: {len(self.links)} monitored links, "
            f"{self.total_faults} faults observed",
        ]
        for key in self.suspicious_links:
            status = self.links[key]
            lines.append(
                f"  link {key[0]:2d}->{key[1].name:5s}: "
                f"{status.verdict.value:9s} "
                f"({status.faults_observed} faults, "
                f"{status.obfuscation_successes} obfuscation successes, "
                f"{status.bist_scans} BIST scans)"
            )
        if not self.suspicious_links:
            lines.append("  no condemned links")
        ob_total = sum(self.obfuscated_sends.values())
        if ob_total:
            methods = ", ".join(
                f"{m.value}={n}"
                for m, n in self.obfuscated_sends.items()
                if n
            )
            lines.append(
                f"  L-Ob traffic: {ob_total} obfuscated sends "
                f"({methods}); {self.preemptive_sends} preemptive"
            )
        return "\n".join(lines)


def security_report(network: Network) -> SecurityReport:
    """Collect the posture of a mitigated network.

    Raises ``ValueError`` when the network has no threat detectors
    (built without :func:`repro.core.build_mitigated_network`).
    """
    links: dict[LinkKey, LinkSecurityStatus] = {}
    ob_sends: dict[ObMethod, int] = {m: 0 for m in ObMethod}
    preemptive = 0
    saw_detector = False
    for key, link in network.links.items():
        receiver = network.receiver_of(key)
        if not isinstance(receiver, DetectingReceiver):
            continue
        saw_detector = True
        detector = receiver.detector
        links[key] = LinkSecurityStatus(
            link=key,
            verdict=detector.verdict,
            faults_observed=detector.faults_observed,
            obfuscation_successes=detector.obfuscation_successes,
            bist_scans=detector.bist_scans,
            corrupted_traversals=link.corrupted_traversals,
        )
        lob = network.output_port_of(key).lob
        if lob is not None:
            for method, count in lob.obfuscated_sends.items():
                ob_sends[method] += count
            preemptive += lob.preemptive_sends
    if not saw_detector:
        raise ValueError(
            "network has no threat detectors; build it with "
            "build_mitigated_network()"
        )
    return SecurityReport(
        links=links,
        obfuscated_sends=ob_sends,
        preemptive_sends=preemptive,
    )
