"""Wiring of the threat detector + L-Ob into the router datapath.

:class:`DetectingReceiver` extends the baseline ECC receiver with the
Fig. 6 decision process and the downstream half of L-Ob (undo
obfuscation, resolve scramble partners).
:func:`build_mitigated_network` constructs a NoC with the full
mitigation installed on every link — the configuration evaluated in
Fig. 12(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.detector import DetectorConfig, ThreatDetector
from repro.core.lob import (
    DEFAULT_METHOD_SEQUENCE,
    Granularity,
    LObCodec,
    LObEncoder,
    ObDescriptor,
    ObMethod,
    PENALTY_CYCLES,
)
from repro.ecc import SECDED_72_64, DecodeResult, Secded
from repro.faults.bist import BistScanner
from repro.noc.config import NoCConfig
from repro.noc.link import Link, Transmission
from repro.noc.network import Network
from repro.noc.receiver import EccReceiver, StagedFlit
from repro.noc.retrans import NackAdvice
from repro.util.records import BoundedTable
from repro.util.rng import SeededStream, derive_seed


@dataclass(frozen=True)
class MitigationConfig:
    """Everything the proposed mitigation adds to the router."""

    detector: DetectorConfig = DetectorConfig()
    method_sequence: tuple = DEFAULT_METHOD_SEQUENCE
    flow_log_capacity: int = 16
    reorder_window: int = 4
    #: design-time secret from which per-link shuffle keys derive
    lob_seed: int = 0x10B
    #: receiver-side cache of delivered flit data for unscrambling
    data_cache_capacity: int = 64


class DetectingReceiver(EccReceiver):
    """ECC receiver + threat source detector + L-Ob decoder."""

    def __init__(
        self,
        cfg: NoCConfig,
        link: Link,
        detector: ThreatDetector,
        lob_codec: LObCodec,
        mitigation: MitigationConfig,
        codec: Secded = SECDED_72_64,
    ):
        super().__init__(cfg, link, codec)
        self.detector = detector
        self.lob_codec = lob_codec
        self.mitigation = mitigation
        #: link tag -> recovered data of recently delivered flits
        self._data_cache: BoundedTable = BoundedTable(
            mitigation.data_cache_capacity
        )
        #: partner tag -> staged flits blocked on it
        self._waiting: dict[int, list[StagedFlit]] = {}
        self.scrambles_resolved = 0

    # -- detector hookup -----------------------------------------------------
    def _advice_for(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> Optional[NackAdvice]:
        return self.detector.on_fault(tx, cycle, result)

    def _deliver_plain(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> None:
        self.detector.on_clean(tx, cycle)
        self._finalize_flit(tx.flit, result.data)
        self._cache_and_resolve(tx.tag, result.data, cycle)
        self._stage(StagedFlit(tx.flit, tx.vc, tx.vc_seq, cycle))
        self._send_ok(tx, cycle)

    # -- L-Ob decode ------------------------------------------------------------
    def _accept_obfuscated(
        self, tx: Transmission, cycle: int, result: DecodeResult
    ) -> None:
        self.detector.on_clean(tx, cycle)
        desc = tx.ob
        assert desc is not None
        if desc.method is ObMethod.SCRAMBLE:
            self._accept_scrambled(tx, cycle, result, desc)
            return
        penalty = PENALTY_CYCLES[desc.method]
        self.deob_stall_cycles += penalty
        data = self.lob_codec.undo(result.data, desc.method, desc.granularity)
        self._finalize_flit(tx.flit, data)
        self._cache_and_resolve(tx.tag, data, cycle)
        self._stage(StagedFlit(tx.flit, tx.vc, tx.vc_seq, cycle + penalty))
        self._send_ok(tx, cycle)

    def _accept_scrambled(
        self,
        tx: Transmission,
        cycle: int,
        result: DecodeResult,
        desc: ObDescriptor,
    ) -> None:
        partner_data = self._data_cache.get(desc.partner_tag)
        if partner_data is not None:
            data = result.data ^ partner_data
            penalty = PENALTY_CYCLES[ObMethod.SCRAMBLE]
            self.deob_stall_cycles += penalty
            self._finalize_flit(tx.flit, data)
            self._cache_and_resolve(tx.tag, data, cycle)
            self._stage(
                StagedFlit(tx.flit, tx.vc, tx.vc_seq, cycle + penalty)
            )
            self.scrambles_resolved += 1
        else:
            # Hold the scrambled word until the partner crosses the link
            # (Fig. 7 step (i): flit #4 stalls until (2+4) resolves).
            tx.flit.data = result.data  # scrambled word, fixed on resolve
            staged = StagedFlit(
                tx.flit,
                tx.vc,
                tx.vc_seq,
                release_cycle=None,
                waiting_for_tag=desc.partner_tag,
                own_tag=tx.tag,
            )
            self._stage(staged)
            self._waiting.setdefault(desc.partner_tag, []).append(staged)
        self._send_ok(tx, cycle)

    def _cache_and_resolve(self, tag: int, data: int, cycle: int) -> None:
        """Record recovered data and wake any scramble waiter on it.

        Resolution recurses: a resolved waiter may itself be the pledged
        partner of a later scrambled flit (targets scrambled with
        targets form chains), so its recovered data is cached under its
        own tag, cascading until the chain is drained.
        """
        self._data_cache.put(tag, data)
        waiters = self._waiting.pop(tag, None)
        if not waiters:
            return
        for staged in waiters:
            recovered = staged.flit.data ^ data
            self._finalize_flit(staged.flit, recovered)
            staged.release_cycle = cycle + 1  # the final un-XOR cycle
            staged.waiting_for_tag = None
            self.deob_stall_cycles += 1
            self.scrambles_resolved += 1
            if staged.own_tag is not None:
                self._cache_and_resolve(staged.own_tag, recovered, cycle)


def build_mitigated_network(
    cfg: NoCConfig,
    mitigation: Optional[MitigationConfig] = None,
    **network_kwargs,
) -> Network:
    """A NoC with the paper's full mitigation on every link: per-link
    threat detectors (with BIST) downstream and L-Ob encoders upstream,
    sharing per-link shuffle secrets."""
    mcfg = mitigation or MitigationConfig()
    codecs: dict[tuple, LObCodec] = {}

    def codec_for(link: Link) -> LObCodec:
        key = link.key
        if key not in codecs:
            codecs[key] = LObCodec(
                cfg.flit_bits, derive_seed(mcfg.lob_seed, key)
            )
        return codecs[key]

    def receiver_factory(cfg_: NoCConfig, link: Link) -> DetectingReceiver:
        bist = BistScanner(
            SECDED_72_64.codeword_bits,
            SeededStream(cfg_.seed, "bist", link.key),
        )
        detector = ThreatDetector(mcfg.detector, link, bist)
        return DetectingReceiver(
            cfg_, link, detector, codec_for(link), mcfg
        )

    def lob_factory(cfg_: NoCConfig, link: Link) -> LObEncoder:
        return LObEncoder(
            codec_for(link),
            method_sequence=mcfg.method_sequence,
            flow_log_capacity=mcfg.flow_log_capacity,
            reorder_window=mcfg.reorder_window,
        )

    return Network(
        cfg,
        receiver_factory=receiver_factory,
        lob_factory=lob_factory,
        **network_kwargs,
    )
