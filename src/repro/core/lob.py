"""L-Ob: switch-to-switch link obfuscation (paper §IV-A).

Three data transforms — *invert*, *shuffle*, *scramble* — plus
*flit reordering*, selectable on demand for the entire flit, the header,
or the payload.  Adjacent routers share the (design-time) shuffle
permutation as a link secret; the scramble transform XORs the targeted
flit with another in-flight flit (Fig. 7: flit #2 becomes (2+4)), which
works through SECDED because the code is linear.

The upstream encoder also keeps the paper's *method log*: "Once a
obfuscation method succeeds, it is logged for future attempts", so later
flits of the same flow skip the escalation ladder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from repro.noc.flit import FULL_WINDOW, HEADER_WINDOW, PAYLOAD_WINDOW
from repro.util.bits import BitPermutation, mask
from repro.util.records import BoundedTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.retrans import RetransEntry


class ObMethod(enum.Enum):
    INVERT = "invert"
    SHUFFLE = "shuffle"
    SCRAMBLE = "scramble"
    REORDER = "reorder"


class Granularity(enum.Enum):
    FULL = "full"
    HEADER = "header"
    PAYLOAD = "payload"


_WINDOWS = {
    Granularity.FULL: (0, 64),
    Granularity.HEADER: HEADER_WINDOW,
    Granularity.PAYLOAD: PAYLOAD_WINDOW,
}


@dataclass(frozen=True, slots=True)
class ObDescriptor:
    """Sideband description of how a transmission was obfuscated.

    Travels on the s2s control wires, which the link trojan does not tap
    (it inspects the data wires only) — the same trust assumption the
    paper makes for the ACK/NACK wires.
    """

    method: ObMethod
    granularity: Granularity = Granularity.FULL
    #: link tag of the scramble partner flit
    partner_tag: Optional[int] = None


#: Default escalation ladder; the threat detector advances one step per
#: failed (re-triggered) attempt.
DEFAULT_METHOD_SEQUENCE: tuple[tuple[ObMethod, Granularity], ...] = (
    (ObMethod.INVERT, Granularity.FULL),
    (ObMethod.SHUFFLE, Granularity.FULL),
    (ObMethod.SCRAMBLE, Granularity.FULL),
    (ObMethod.INVERT, Granularity.HEADER),
    (ObMethod.SHUFFLE, Granularity.HEADER),
    (ObMethod.INVERT, Granularity.PAYLOAD),
    (ObMethod.SHUFFLE, Granularity.PAYLOAD),
)

#: Paper §IV: undoing obfuscation costs 1 cycle (invert/shuffle) or 1–2
#: cycles (scramble: wait for the partner, then un-XOR).
PENALTY_CYCLES = {
    ObMethod.INVERT: 1,
    ObMethod.SHUFFLE: 1,
    ObMethod.SCRAMBLE: 2,
    ObMethod.REORDER: 0,
}


class LObCodec:
    """The data transforms, shared by both ends of one link.

    Each link gets its own shuffle permutations derived from a seed
    (the design-time link secret), so learning one link's permutation
    does not compromise another's.
    """

    _GRAN_SALT = {
        Granularity.FULL: 0x5EED_0001,
        Granularity.HEADER: 0x5EED_0002,
        Granularity.PAYLOAD: 0x5EED_0003,
    }

    def __init__(self, flit_bits: int = 64, seed: int = 0):
        self.flit_bits = flit_bits
        self._perms: dict[Granularity, BitPermutation] = {}
        for gran, (off, width) in _WINDOWS.items():
            width = min(width, flit_bits - off)
            self._perms[gran] = BitPermutation.from_seed(
                width, seed ^ self._GRAN_SALT[gran]
            )

    def _window(self, gran: Granularity) -> tuple[int, int]:
        off, width = _WINDOWS[gran]
        return off, min(width, self.flit_bits - off)

    def apply(self, data: int, method: ObMethod, gran: Granularity) -> int:
        """Obfuscate ``data`` (scramble/reorder are handled by the
        encoder, not here)."""
        off, width = self._window(gran)
        window_mask = mask(width) << off
        field = (data >> off) & mask(width)
        if method is ObMethod.INVERT:
            field ^= mask(width)
        elif method is ObMethod.SHUFFLE:
            field = self._perms[gran].apply(field)
        else:
            raise ValueError(f"{method} is not a pure data transform")
        return (data & ~window_mask) | (field << off)

    def undo(self, data: int, method: ObMethod, gran: Granularity) -> int:
        off, width = self._window(gran)
        window_mask = mask(width) << off
        field = (data >> off) & mask(width)
        if method is ObMethod.INVERT:
            field ^= mask(width)
        elif method is ObMethod.SHUFFLE:
            field = self._perms[gran].invert(field)
        else:
            raise ValueError(f"{method} is not a pure data transform")
        return (data & ~window_mask) | (field << off)


class LObEncoder:
    """The upstream half of L-Ob, attached to one output port.

    ``select_and_encode`` is called by the router's link-launch stage
    with the launchable retransmission entries (oldest first) and
    returns which entry to send and with what wire data.
    """

    def __init__(
        self,
        codec: LObCodec,
        method_sequence: Sequence[tuple[ObMethod, Granularity]] = DEFAULT_METHOD_SEQUENCE,
        flow_log_capacity: int = 16,
        reorder_window: int = 4,
    ):
        if not method_sequence:
            raise ValueError("method sequence must not be empty")
        self.codec = codec
        self.method_sequence = tuple(method_sequence)
        #: flow signature -> index into method_sequence that worked
        self.flow_log: BoundedTable = BoundedTable(flow_log_capacity)
        self.reorder_window = reorder_window
        #: becomes True on the first obfuscation request; from then on
        #: flows with a logged method are pre-obfuscated
        self.link_suspicious = False
        # -- counters -----------------------------------------------------
        self.obfuscated_sends: dict[ObMethod, int] = {m: 0 for m in ObMethod}
        self.preemptive_sends = 0
        self.reorders = 0

    # ------------------------------------------------------------------
    def _method_for(self, index: int) -> tuple[ObMethod, Granularity]:
        return self.method_sequence[index % len(self.method_sequence)]

    def _logged_index(self, flow_signature: tuple) -> Optional[int]:
        return self.flow_log.get(flow_signature)

    def select_and_encode(
        self, candidates: list["RetransEntry"], cycle: int
    ) -> Optional[tuple["RetransEntry", int, Optional[ObDescriptor]]]:
        """Choose the entry to launch and produce its wire data.

        Returns ``None`` to idle the link this cycle (e.g. the only
        candidate is being reorder-deferred).
        """
        for position, entry in enumerate(candidates):
            advice = entry.ob_advice
            method_index: Optional[int] = None
            preemptive = False
            if advice is not None and advice.enable_obfuscation:
                self.link_suspicious = True
                method_index = advice.method_index
            elif self.link_suspicious:
                logged = self._logged_index(entry.flit.flow_signature)
                if logged is not None:
                    method_index = logged
                    preemptive = True

            if method_index is None:
                return entry, entry.flit.data, None

            method, gran = self._method_for(method_index)

            if method is ObMethod.REORDER:
                # Deprioritize this flit; try the next candidate.
                entry.defer_until = cycle + self.reorder_window
                self.reorders += 1
                continue

            if method is ObMethod.SCRAMBLE:
                partner = self._pick_partner(candidates, position)
                if partner is None:
                    # No partner in the buffer: fall back to the next
                    # method in the ladder for this send.
                    method, gran = self._method_for(method_index + 1)
                    if method in (ObMethod.SCRAMBLE, ObMethod.REORDER):
                        method, gran = ObMethod.INVERT, Granularity.FULL
                else:
                    data = entry.flit.data ^ partner.flit.data
                    self.obfuscated_sends[ObMethod.SCRAMBLE] += 1
                    if preemptive:
                        self.preemptive_sends += 1
                    desc = ObDescriptor(
                        ObMethod.SCRAMBLE,
                        Granularity.FULL,
                        partner_tag=partner.tag,
                    )
                    return entry, data, desc

            data = self.codec.apply(entry.flit.data, method, gran)
            self.obfuscated_sends[method] += 1
            if preemptive:
                self.preemptive_sends += 1
            return entry, data, ObDescriptor(method, gran)
        return None

    @staticmethod
    def _pick_partner(
        candidates: list["RetransEntry"], position: int
    ) -> Optional["RetransEntry"]:
        """A partner must itself be launchable and un-advised (it will
        traverse the link in the clear after the scrambled word)."""
        for i, entry in enumerate(candidates):
            if i == position:
                continue
            if entry.ob_advice is None or not entry.ob_advice.enable_obfuscation:
                return entry
        return None

    # ------------------------------------------------------------------
    def record_success(self, flow_signature: tuple, descriptor: ObDescriptor) -> None:
        """Downstream confirmed this method got the flit across; log it
        for future flits of the flow (paper Fig. 6, final step)."""
        try:
            index = self.method_sequence.index(
                (descriptor.method, descriptor.granularity)
            )
        except ValueError:
            return
        self.flow_log.put(flow_signature, index)
