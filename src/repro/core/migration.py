"""OS-level process migration (paper §IV-B).

"Shrinking the scope may help determine if more aggressive approaches
need to be taken, such as rerouting packets or **invoking the OS to
migrate processes from one network region to another** which can be
used to complement our proposed design."

This module implements that complementary response: once the threat
detector condemns links, the OS can relocate the victim application's
processes so their flows no longer traverse the infected region.
Migration is modelled at the traffic level — a core remapping plus a
downtime window during which the migrated processes inject nothing
(architectural state is moving).

The planner is a greedy placement search: victim cores are re-homed,
nearest-first, onto spare cores whose xy paths to every (remapped) peer
avoid all condemned links.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.network import TrafficSource
from repro.noc.topology import LinkKey, links_on_xy_path

#: flits of architectural state to copy per migrated process — sets the
#: downtime the OS pays (cache + register state over the NoC)
STATE_FLITS_PER_CORE = 256


class MigrationError(RuntimeError):
    """No placement avoids the condemned links."""


@dataclass(frozen=True)
class MigrationPlan:
    """A core remapping plus its modelled cost."""

    mapping: dict[int, int]
    condemned: tuple[LinkKey, ...]
    #: cycles the migrated processes are frozen while state moves
    downtime_cycles: int

    def remap(self, core: int) -> int:
        return self.mapping.get(core, core)

    @property
    def moved_cores(self) -> list[int]:
        return [c for c, t in self.mapping.items() if c != t]


def _path_is_clean(
    cfg: NoCConfig, src_core: int, dst_core: int, condemned: set[LinkKey]
) -> bool:
    src = cfg.router_of_core(src_core)
    dst = cfg.router_of_core(dst_core)
    return not any(
        key in condemned for key in links_on_xy_path(cfg, src, dst)
    )


def plan_migration(
    cfg: NoCConfig,
    flows: Sequence[tuple[int, int]],
    condemned: Iterable[LinkKey],
    movable_cores: Iterable[int],
    spare_cores: Iterable[int],
    state_flits_per_core: int = STATE_FLITS_PER_CORE,
) -> MigrationPlan:
    """Place the movable cores so every flow avoids the condemned links.

    ``flows`` are (src_core, dst_core) pairs of the victim application;
    endpoints not in ``movable_cores`` are pinned (e.g. memory
    controllers).  Raises :class:`MigrationError` when no placement
    works.
    """
    condemned = set(condemned)
    movable = list(dict.fromkeys(movable_cores))
    spares = list(dict.fromkeys(spare_cores))
    if any(s in movable for s in spares):
        raise ValueError("spare cores must be disjoint from movable cores")

    # keep cores that already see only clean paths where they are
    mapping: dict[int, int] = {}
    order = sorted(
        movable,
        key=lambda c: sum(
            1
            for s, d in flows
            if (s == c or d == c)
            and not _path_is_clean(cfg, s, d, condemned)
        ),
        reverse=True,
    )

    def flows_of(core: int) -> list[tuple[int, int]]:
        return [(s, d) for s, d in flows if s == core or d == core]

    def placement_ok(core: int, target: int) -> bool:
        trial = dict(mapping)
        trial[core] = target
        for s, d in flows_of(core):
            rs = trial.get(s, s)
            rd = trial.get(d, d)
            if rs == rd:
                continue
            if not _path_is_clean(cfg, rs, rd, condemned):
                return False
        return True

    used: set[int] = set()
    for core in order:
        # staying put is best (no state copy) if all its flows are clean
        if placement_ok(core, core):
            mapping[core] = core
            continue
        home = cfg.router_of_core(core)
        candidates = sorted(
            (s for s in spares if s not in used),
            key=lambda s: cfg.hop_distance(home, cfg.router_of_core(s)),
        )
        for target in candidates:
            if placement_ok(core, target):
                mapping[core] = target
                used.add(target)
                break
        else:
            raise MigrationError(
                f"no clean placement for core {core} "
                f"(condemned: {sorted(condemned)})"
            )

    moved = sum(1 for c, t in mapping.items() if c != t)
    # state of all moved processes is copied serially over the NoC
    downtime = moved * state_flits_per_core // max(1, cfg.concentration)
    return MigrationPlan(
        mapping=mapping,
        condemned=tuple(sorted(condemned)),
        downtime_cycles=downtime,
    )


class MigratedSource(TrafficSource):
    """Wrap a traffic source with a migration plan.

    Until ``effective_cycle + downtime`` the *moved* processes inject
    nothing (they are being copied); afterwards all their packets carry
    remapped endpoints.
    """

    def __init__(
        self,
        inner: TrafficSource,
        plan: MigrationPlan,
        effective_cycle: int = 0,
    ):
        self.inner = inner
        self.plan = plan
        self.effective_cycle = effective_cycle
        self.packets_dropped_in_downtime = 0

    @property
    def resume_cycle(self) -> int:
        return self.effective_cycle + self.plan.downtime_cycles

    def generate(self, cycle: int) -> list[Packet]:
        packets = self.inner.generate(cycle)
        if cycle < self.effective_cycle:
            return packets
        moved = set(self.plan.moved_cores)
        out: list[Packet] = []
        for pkt in packets:
            involves_moved = pkt.src_core in moved or pkt.dst_core in moved
            if involves_moved and cycle < self.resume_cycle:
                # the process is frozen mid-copy: its traffic pauses
                self.packets_dropped_in_downtime += 1
                continue
            if pkt.src_core in self.plan.mapping or pkt.dst_core in self.plan.mapping:
                pkt = copy.copy(pkt)
                pkt.src_core = self.plan.remap(pkt.src_core)
                pkt.dst_core = self.plan.remap(pkt.dst_core)
                if pkt.src_core == pkt.dst_core:
                    continue
            out.append(pkt)
        return out

    def done(self, cycle: int) -> bool:
        return self.inner.done(cycle)
