"""The threat source detector (paper §IV-B, Fig. 6).

Sits next to the ECC decoder at each link input and classifies the
cause of retransmissions:

* first fault on a flit → plain retransmission (could be a transient);
* repeat fault on the *same* flit → "repetitive transient faults are
  unlikely": kick BIST to rule out a permanent fault, and tell the
  upstream L-Ob to obfuscate the next retransmission;
* repeat fault on an *obfuscated* flit → advance to the next
  obfuscation method;
* clean arrival of an obfuscated flit → method success, logged upstream.

The link verdict combines three signals the paper identifies: repeated
faults keyed to specific flits (target-activated), BIST coming back
clean (not a stuck-at wire), and fault positions that move between
retries (the trojan's payload counter disguising itself as transients).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.faults.bist import BistReport, BistScanner, BistVerdict
from repro.noc.retrans import NackAdvice
from repro.util.records import BoundedTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.ecc import DecodeResult
    from repro.noc.link import Link, Transmission


class LinkVerdict(enum.Enum):
    UNKNOWN = "unknown"
    TRANSIENT = "transient"
    PERMANENT = "permanent"
    TROJAN = "trojan"


@dataclass(slots=True)
class FaultRecord:
    """Per-flit (per link tag) fault history entry."""

    tag: int
    fault_count: int = 0
    syndromes: list[int] = field(default_factory=list)
    obfuscated_faults: int = 0
    #: next method index to advise
    method_index: int = 0
    first_cycle: int = -1
    last_cycle: int = -1
    #: recorded flit characteristics (paper: source, destination, vc,
    #: memory address are logged alongside the syndrome)
    flow_signature: Optional[tuple] = None
    mem_addr: int = 0


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs of the threat detector."""

    #: CAM capacity for per-flit fault history
    history_capacity: int = 32
    #: faults on the same flit before BIST + L-Ob engage
    repeat_threshold: int = 2
    #: distinct syndromes required to call moving-fault behaviour
    moving_fault_threshold: int = 2
    bist_enabled: bool = True


class ThreatDetector:
    """One detector instance per link input port."""

    def __init__(
        self,
        config: DetectorConfig,
        link: "Link",
        bist: Optional[BistScanner] = None,
    ):
        self.config = config
        self.link = link
        self.bist = bist
        self.history: BoundedTable = BoundedTable(config.history_capacity)
        self.verdict = LinkVerdict.UNKNOWN
        self.bist_report: Optional[BistReport] = None
        self._bist_requested = False
        # -- counters -----------------------------------------------------
        # .. deprecated:: read these through the metrics registry
        #    (``repro.obs.collectors.collect_security`` publishes them
        #    as ``detector_*`` series and ``security_report`` is now an
        #    adapter over that snapshot); the raw attributes remain the
        #    mutation site only.
        self.faults_observed = 0
        self.transient_resolutions = 0
        self.obfuscation_successes = 0
        self.bist_scans = 0

    # ------------------------------------------------------------------
    def on_fault(
        self, tx: "Transmission", cycle: int, result: "DecodeResult"
    ) -> NackAdvice:
        """Fig. 6 decision path for an uncorrectable fault; returns the
        advice to piggyback on the NACK."""
        self.faults_observed += 1
        record = self.history.get(tx.tag)
        if record is None:
            record = FaultRecord(tag=tx.tag, first_cycle=cycle)
            record.flow_signature = tx.flit.flow_signature
            record.mem_addr = tx.flit.mem_addr
            self.history.put(tx.tag, record)
        record.fault_count += 1
        record.last_cycle = cycle
        record.syndromes.append(result.syndrome)
        if tx.ob is not None:
            record.obfuscated_faults += 1
            # The obfuscated retry still triggered the trojan (or hit a
            # second fault source): escalate to the next method.
            record.method_index += 1

        if record.fault_count < self.config.repeat_threshold:
            # First sighting: correct-or-retransmit, no escalation yet.
            return NackAdvice(enable_obfuscation=False)

        # "If the flit has been retransmitted before, notify BIST to scan
        # for a permanent fault because repetitive transient faults are
        # unlikely."
        if self.config.bist_enabled and not self._bist_requested:
            self._run_bist(cycle)

        self._update_verdict(record)
        return NackAdvice(
            enable_obfuscation=True, method_index=record.method_index
        )

    def on_clean(self, tx: "Transmission", cycle: int) -> None:
        """A flit arrived intact; resolve any pending history."""
        record = self.history.pop(tx.tag)
        if tx.ob is not None:
            self.obfuscation_successes += 1
            if record is not None and self.verdict is LinkVerdict.UNKNOWN:
                self._update_verdict(record)
        elif record is not None:
            # Faulted before, clean now, without obfuscation: consistent
            # with a transient burst.
            self.transient_resolutions += 1
            if self.verdict is LinkVerdict.UNKNOWN:
                self.verdict = LinkVerdict.TRANSIENT

    # ------------------------------------------------------------------
    def _run_bist(self, cycle: int) -> None:
        self._bist_requested = True
        if self.bist is None:
            return
        self.bist_scans += 1
        self.bist_report = self.bist.scan(self.link.apply_tamper, cycle)
        if self.bist_report.verdict is BistVerdict.PERMANENT:
            self.verdict = LinkVerdict.PERMANENT

    def _update_verdict(self, record: FaultRecord) -> None:
        if self.verdict is LinkVerdict.PERMANENT:
            return
        bist_clean = (
            self.bist_report is None
            or self.bist_report.verdict is not BistVerdict.PERMANENT
        )
        moving = (
            len(set(record.syndromes)) >= self.config.moving_fault_threshold
        )
        if bist_clean and (moving or record.obfuscated_faults > 0):
            # Repeated, flit-keyed, position-shifting faults on a link
            # BIST says is healthy: a target-activated fault source.
            self.verdict = LinkVerdict.TROJAN

    # ------------------------------------------------------------------
    @property
    def trojan_suspected(self) -> bool:
        return self.verdict is LinkVerdict.TROJAN

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ThreatDetector(link={self.link.key}, verdict={self.verdict.value}, "
            f"faults={self.faults_observed})"
        )
