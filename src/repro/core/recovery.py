"""Epoch-based recovery: detect, quiesce, reconfigure, resubmit.

The paper's mitigation keeps infected links usable with L-Ob; for links
the detector condemns outright (``PERMANENT``, or trojans under a
reroute policy) the system must eventually *reconfigure* — the
Ariadne-style response.  Mid-flight reconfiguration of a wormhole
network is unsafe, so real systems recover in epochs:

1. **freeze** injection (sources pause);
2. **drain** what the network can still deliver;
3. packets pinned behind the condemned links are **abandoned** (their
   retransmission guarantees end-to-end recovery in step 5);
4. **reconfigure**: disable condemned links, install the up*/down*
   table;
5. **resubmit** every packet that was not delivered, on the new epoch.

:class:`RecoveryManager` drives that sequence over a network and keeps
the ledger of undelivered packets so nothing is lost — the property the
tests pin down is exactly-once delivery across the epoch boundary.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.baselines.reroute import apply_rerouting, updown_table
from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.topology import LinkKey


@dataclass(frozen=True)
class RecoveryReport:
    """What one epoch transition did."""

    condemned: tuple[LinkKey, ...]
    drained_cleanly: bool
    drain_cycles: int
    packets_delivered_before: int
    packets_resubmitted: int
    downtime_cycles: int


class RecoveryManager:
    """Tracks offered packets and rebuilds the network on recovery.

    Use :meth:`offer` instead of ``network.add_packet`` so the manager
    can resubmit undelivered packets after an epoch change.
    """

    #: alias pkt_ids start here — far above any traffic generator's ids,
    #: so an alias can never collide with an offered packet
    ALIAS_BASE = 1_000_000_000

    def __init__(self, network: Network):
        self.network = network
        #: pristine copies of every offered packet
        self._ledger: dict[int, Packet] = {}
        #: original pkt_id -> alias pkt_ids of its in-place resubmissions
        self._aliases: dict[int, list[int]] = {}
        self._next_alias = self.ALIAS_BASE
        self.reports: list[RecoveryReport] = []

    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        if packet.pkt_id in self._ledger:
            raise ValueError(f"duplicate pkt_id {packet.pkt_id}")
        self._ledger[packet.pkt_id] = copy.deepcopy(packet)
        self.network.add_packet(packet)

    def resubmit(self, pkt_id: int, cycle: Optional[int] = None) -> int:
        """Re-offer a degraded packet end-to-end *within* the current
        epoch, under a fresh alias id.

        The alias matters: flits of the dropped attempt may still be in
        flight, and ejecting under the original id would corrupt the
        fresh attempt's delivery accounting.  Returns the alias pkt_id.
        """
        source = self._ledger.get(pkt_id)
        if source is None:
            raise KeyError(f"pkt_id {pkt_id} was never offered")
        clone = copy.deepcopy(source)
        clone.pkt_id = self._next_alias
        self._next_alias += 1
        clone.created_cycle = self.network.cycle if cycle is None else cycle
        self._aliases.setdefault(pkt_id, []).append(clone.pkt_id)
        self.network.add_packet(clone)
        self.network.stats.packets_resubmitted += 1
        return clone.pkt_id

    @property
    def offered(self) -> int:
        """Packets ever offered through the ledger."""
        return len(self._ledger)

    def has(self, pkt_id: int) -> bool:
        return pkt_id in self._ledger

    def _delivered_ok(self, pkt_id: int) -> bool:
        """Delivered exactly once: the original or any of its aliases has
        a complete, correctly-addressed record."""
        stats = self.network.stats
        for candidate in (pkt_id, *self._aliases.get(pkt_id, ())):
            record = stats.packets.get(candidate)
            if record is not None and record.complete and not record.misdelivered:
                return True
        return False

    def duplicate_deliveries(self) -> int:
        """Offered packets with *more than one* complete delivery among
        the original and its aliases — must be zero for exactly-once."""
        stats = self.network.stats
        dups = 0
        for pkt_id in self._ledger:
            complete = 0
            for candidate in (pkt_id, *self._aliases.get(pkt_id, ())):
                record = stats.packets.get(candidate)
                if (
                    record is not None
                    and record.complete
                    and not record.misdelivered
                ):
                    complete += 1
            if complete > 1:
                dups += 1
        return dups

    def undelivered(self) -> list[Packet]:
        return [
            packet
            for pkt_id, packet in self._ledger.items()
            if not self._delivered_ok(pkt_id)
        ]

    @property
    def delivered(self) -> int:
        return len(self._ledger) - len(self.undelivered())

    # ------------------------------------------------------------------
    def recover(
        self,
        condemned: Iterable[LinkKey],
        drain_limit: int = 2000,
        stall_limit: int = 400,
        reconfiguration_cycles: int = 64,
        carry_tamperers: bool = True,
    ) -> Network:
        """Run the freeze/drain/reconfigure/resubmit sequence.

        Returns the new-epoch network (also stored on ``self.network``).
        ``reconfiguration_cycles`` models the firmware broadcast that
        distributes the new routing tables (Ariadne's reconfiguration
        wave) — accounted as downtime in the report.
        """
        old = self.network
        condemned = tuple(sorted(set(condemned)))

        # 1-2. freeze injection and drain what still moves
        old.traffic = None
        start = old.cycle
        drained = old.run_until_drained(drain_limit, stall_limit=stall_limit)
        drain_cycles = old.cycle - start

        # 4. new epoch: same microarchitecture, reconfigured routing
        cfg = dataclasses.replace(old.cfg, routing="table")
        table = updown_table(old.cfg, condemned)
        fresh = Network(cfg, routing_table=table, e2e=old.e2e,
                        policy=old.policy)
        fresh.full_sweep = old.full_sweep
        apply_rerouting(fresh, condemned)
        if carry_tamperers:
            # the trojans are in the silicon: they persist across epochs
            for key, link in old.links.items():
                for tamperer in link.tamperers:
                    fresh.links[key].tamperers.append(tamperer)
        fresh.cycle = old.cycle + reconfiguration_cycles

        # 5. resubmit everything undelivered (3. the abandoned packets)
        resubmitted = 0
        delivered_before = self.delivered
        for packet in self.undelivered():
            clone = copy.deepcopy(packet)
            clone.created_cycle = fresh.cycle
            fresh.add_packet(clone)
            resubmitted += 1

        self.reports.append(
            RecoveryReport(
                condemned=condemned,
                drained_cleanly=drained,
                drain_cycles=drain_cycles,
                packets_delivered_before=delivered_before,
                packets_resubmitted=resubmitted,
                downtime_cycles=drain_cycles + reconfiguration_cycles,
            )
        )
        # adopt the new epoch, carrying over the completed records so the
        # ledger keeps seeing them as delivered
        fresh.stats.packets.update(
            {
                pid: rec
                for pid, rec in old.stats.packets.items()
                if rec.complete and not rec.misdelivered
            }
        )
        self.network = fresh
        return fresh

    # ------------------------------------------------------------------
    def run_epoch(self, max_cycles: int, stall_limit: int = 1500) -> bool:
        """Run the current epoch's network until drained."""
        return self.network.run_until_drained(
            max_cycles, stall_limit=stall_limit
        )
