"""TASP target specifications.

The trojan's *target block* (paper Fig. 3) is a bank of comparators
"tuned to identify packet information such as source, destination,
virtual channel (VC), process or thread ID, and memory address in any
combination or ranges.  To minimize overhead of the target block, only
a fraction of the link width is compared."

A :class:`TargetSpec` captures which fields are compared and against
what; its :attr:`compare_width` is the number of wire bits tapped —
the quantity that drives the trojan's area/power in Table I and Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.noc.flit import (
    DST_FIELD,
    HeaderLayout,
    MEM_FIELD,
    PAPER_LAYOUT,
    SRC_FIELD,
    TYPE_FIELD,
    VC_FIELD,
)
from repro.util.bits import extract_field, mask


@dataclass(frozen=True)
class TargetSpec:
    """Fields the trojan compares; ``None`` means "don't care".

    ``mem_mask`` restricts the memory-address compare to selected bits,
    which models the paper's "ranges" (e.g. match a whole page by
    masking the offset bits).
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    vc: Optional[int] = None
    mem: Optional[int] = None
    mem_mask: int = mask(32)
    #: additionally require the flit-type field to read HEAD/SINGLE.
    #: Without this gate a narrow comparator aliases on body-flit
    #: payload bits (the paper's "masking an unintended target" risk) —
    #: the ablation bench quantifies that trade-off.
    head_only: bool = False

    def __post_init__(self) -> None:
        # Router-id bounds are layout-dependent (wide meshes widen the
        # header fields); matches() re-checks against the actual layout.
        if self.src is not None and not 0 <= self.src < (1 << 16):
            raise ValueError("src target out of range")
        if self.dst is not None and not 0 <= self.dst < (1 << 16):
            raise ValueError("dst target out of range")
        if self.vc is not None and not 0 <= self.vc < 4:
            raise ValueError("vc target must fit 2 bits")
        if self.mem is not None and not 0 <= self.mem <= mask(32):
            raise ValueError("mem target must fit 32 bits")
        if not 0 <= self.mem_mask <= mask(32):
            raise ValueError("mem_mask must fit 32 bits")
        if (
            self.src is None
            and self.dst is None
            and self.vc is None
            and self.mem is None
        ):
            raise ValueError("target must compare at least one field")

    # -- constructors matching the paper's variants ----------------------
    @classmethod
    def for_src(cls, src: int) -> "TargetSpec":
        return cls(src=src)

    @classmethod
    def for_dest(cls, dst: int) -> "TargetSpec":
        return cls(dst=dst)

    @classmethod
    def for_dest_src(cls, src: int, dst: int) -> "TargetSpec":
        return cls(src=src, dst=dst)

    @classmethod
    def for_vc(cls, vc: int) -> "TargetSpec":
        return cls(vc=vc)

    @classmethod
    def for_mem(cls, mem: int, mem_mask: int = mask(32)) -> "TargetSpec":
        return cls(mem=mem, mem_mask=mem_mask)

    @classmethod
    def full(cls, src: int, dst: int, vc: int, mem: int) -> "TargetSpec":
        return cls(src=src, dst=dst, vc=vc, mem=mem)

    # -- classification ----------------------------------------------------
    @property
    def kind(self) -> str:
        """The paper's variant name for this spec (Table I columns)."""
        fields = (
            self.src is not None,
            self.dst is not None,
            self.vc is not None,
            self.mem is not None,
        )
        if fields == (True, True, True, True):
            return "Full"
        if fields == (True, True, False, False):
            return "Dest_Src"
        if fields == (True, False, False, False):
            return "Src"
        if fields == (False, True, False, False):
            return "Dest"
        if fields == (False, False, True, False):
            return "VC"
        if fields == (False, False, False, True):
            return "Mem"
        return "Custom"

    @property
    def compare_width(self) -> int:
        """Wire bits tapped by the comparator (Table I: full 42, dest 4,
        src 4, dest_src 8, mem 32, vc 2)."""
        width = 0
        if self.src is not None:
            width += SRC_FIELD[1]
        if self.dst is not None:
            width += DST_FIELD[1]
        if self.vc is not None:
            width += VC_FIELD[1]
        if self.mem is not None:
            width += bin(self.mem_mask).count("1")
        if self.head_only:
            width += TYPE_FIELD[1]
        return width

    # -- matching -------------------------------------------------------------
    def matches(
        self, wire_image: int, layout: HeaderLayout = PAPER_LAYOUT
    ) -> bool:
        """Deep-packet-inspect a wire image (64-bit at paper scale).

        The trojan taps raw link wires, so a body flit's payload bits are
        compared exactly as header bits would be — accidental triggers on
        payload data are possible by design.  The comparator is wired for
        one specific ``layout``; pass the mesh's (``flit.layout_for``)
        when inspecting wide-mesh traffic.
        """
        if self.head_only:
            ftype = extract_field(wire_image, *layout.ftype)
            if ftype not in (0, 3):  # FlitType.HEAD / FlitType.SINGLE
                return False
        if self.src is not None and extract_field(wire_image, *layout.src) != self.src:
            return False
        if self.dst is not None and extract_field(wire_image, *layout.dst) != self.dst:
            return False
        if self.vc is not None and extract_field(wire_image, *layout.vc) != self.vc:
            return False
        if self.mem is not None:
            got = extract_field(wire_image, *layout.mem) & self.mem_mask
            if got != self.mem & self.mem_mask:
                return False
        return True

    def random_match_probability(self) -> float:
        """Probability a uniform random word matches — the accidental
        trigger rate on body flits and BIST patterns (ablation input).

        The head-only gate compares 2 type bits but accepts two of the
        four values (HEAD and SINGLE), so it contributes a factor of
        1/2 rather than 1/4.
        """
        p = 2.0 ** (-self.compare_width)
        if self.head_only:
            p *= 2.0  # two accepted type encodings
        return p
