"""Analytic area/power/timing substrate (Synopsys DC + TSMC 40 nm
substitute — see DESIGN.md §2 and :mod:`repro.power.gates`)."""

from repro.power.blocks import (
    NoCBudget,
    RouterBreakdown,
    buffer_budget,
    crossbar_budget,
    global_wire_area,
    lob_budget,
    noc_budget,
    router_breakdown,
    tasp_budget,
    threat_detector_budget,
)
from repro.power.energy import EnergyReport, amplification, energy_report
from repro.power.gates import (
    Budget,
    Cell,
    CLOCK_GHZ,
    CLOCK_PERIOD_NS,
    GateLibrary,
    LIB,
    SUPPLY_V,
)
from repro.power.noc_power import (
    Fig8Report,
    MitigationRow,
    PAPER_TABLE1,
    PAPER_TARGETS,
    VariantRow,
    fig8_report,
    table1_rows,
    table2_rows,
)

__all__ = [
    "EnergyReport",
    "amplification",
    "energy_report",
    "NoCBudget",
    "RouterBreakdown",
    "buffer_budget",
    "crossbar_budget",
    "global_wire_area",
    "lob_budget",
    "noc_budget",
    "router_breakdown",
    "tasp_budget",
    "threat_detector_budget",
    "Budget",
    "Cell",
    "CLOCK_GHZ",
    "CLOCK_PERIOD_NS",
    "GateLibrary",
    "LIB",
    "SUPPLY_V",
    "Fig8Report",
    "MitigationRow",
    "PAPER_TABLE1",
    "PAPER_TARGETS",
    "VariantRow",
    "fig8_report",
    "table1_rows",
    "table2_rows",
]
