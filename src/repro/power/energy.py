"""Energy accounting from simulation counters.

The paper repeatedly ties faults to energy: ECC correction "consumes
more energy at the receiver", retransmissions have "both performance
and power penalties".  This module converts a finished simulation's
counters into dynamic energy, so the *energy amplification* of an
attack (every retransmission re-pays link + ECC + buffer energy) can be
quantified next to its performance damage.

Per-event energies are derived from the same 40 nm-class constants as
the area/power model (see :mod:`repro.power.gates`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.network import Network
from repro.power.gates import LINK_LENGTH_UM

#: wire capacitance per um (40 nm intermediate metal, incl. repeaters)
_WIRE_CAP_FF_PER_UM = 0.2
#: supply voltage
_VDD = 1.0
#: average switching activity of a codeword on the wire
_WIRE_ACTIVITY = 0.25
#: energy per 72-bit link traversal (pJ): C * V^2 * bits * activity
LINK_TRAVERSAL_PJ = (
    _WIRE_CAP_FF_PER_UM * LINK_LENGTH_UM * 1e-3  # fF -> pF
    * _VDD**2
    * 72
    * _WIRE_ACTIVITY
)
#: SECDED decode (syndrome + correct) energy per flit, pJ
ECC_DECODE_PJ = 0.9
#: extra energy when the decoder actually corrects a bit, pJ
ECC_CORRECTION_PJ = 0.6
#: 64-bit buffer write+read energy, pJ
BUFFER_ACCESS_PJ = 1.4
#: crossbar traversal energy per flit, pJ
CROSSBAR_PJ = 0.5


@dataclass(frozen=True)
class EnergyReport:
    """Dynamic energy consumed by a finished run (picojoules)."""

    link_pj: float
    ecc_pj: float
    correction_pj: float
    buffer_pj: float
    crossbar_pj: float
    #: traversals that were retransmissions (wasted if the run is clean)
    retransmission_traversals: int
    flits_delivered: int

    @property
    def total_pj(self) -> float:
        return (
            self.link_pj
            + self.ecc_pj
            + self.correction_pj
            + self.buffer_pj
            + self.crossbar_pj
        )

    @property
    def pj_per_delivered_flit(self) -> float:
        if not self.flits_delivered:
            return float("inf")
        return self.total_pj / self.flits_delivered


def energy_report(net: Network) -> EnergyReport:
    """Roll a network's counters up into dynamic energy."""
    traversals = sum(link.traversals for link in net.links.values())
    corrections = 0
    decodes = 0
    for key in net.links:
        receiver = net.receiver_of(key)
        corrections += receiver.flits_corrected
        decodes += receiver.flits_accepted + receiver.faults_detected

    retransmissions = sum(
        out.retrans.nacks_received
        for router in net.routers
        for out in router.outputs.values()
    )
    switched = sum(router.flits_switched for router in net.routers)

    return EnergyReport(
        link_pj=traversals * LINK_TRAVERSAL_PJ,
        ecc_pj=decodes * ECC_DECODE_PJ,
        correction_pj=corrections * ECC_CORRECTION_PJ,
        buffer_pj=switched * BUFFER_ACCESS_PJ,
        crossbar_pj=switched * CROSSBAR_PJ,
        retransmission_traversals=retransmissions,
        flits_delivered=net.stats.flits_ejected,
    )


def amplification(attacked: EnergyReport, clean: EnergyReport) -> float:
    """Energy-per-delivered-flit ratio: how much more the chip pays per
    useful flit while under attack."""
    if not clean.flits_delivered:
        raise ValueError("clean run delivered nothing")
    return attacked.pj_per_delivered_flit / clean.pj_per_delivered_flit
