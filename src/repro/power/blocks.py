"""Structural area/power/timing models of every hardware block.

Each model composes standard cells from :mod:`repro.power.gates` into a
:class:`Budget`.  The TASP models are anchored to the paper's published
Dest variant (Table I) through a single calibration factor per metric;
every other variant is then a prediction of the structure (and
EXPERIMENTS.md reports how far each lands from the paper).

The router model reproduces the classic breakdown the paper shows in
Fig. 8: flip-flop-based VC buffers dominate dynamic (~71 %) and leakage
(~88 %) power, the crossbar is next, allocators and the clock tree make
up the rest, and a TASP is well under 1 % of a router.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.noc.config import NoCConfig
from repro.power.gates import (
    Budget,
    CLOCK_PERIOD_NS,
    LIB,
    LINK_LENGTH_UM,
    WIRE_PITCH_UM,
)

#: wire-load / layout margin applied to structural critical paths
TIMING_MARGIN = 1.12

#: toggle probability assumed per compared field (header routing fields
#: toggle with traffic; memory addresses have locality; VC ids change
#: rarely)
FIELD_ACTIVITY = {"src": 0.5, "dst": 0.5, "vc": 0.3, "mem": 0.15}


# ----------------------------------------------------------------------
# TASP trojan
# ----------------------------------------------------------------------

def _tasp_raw(target: TargetSpec, config: TaspConfig) -> Budget:
    """Uncalibrated structural budget of one TASP instance."""
    b = Budget()

    # target block: one macro compare bit per tapped wire
    fields: list[tuple[str, int]] = []
    if target.src is not None:
        fields.append(("src", 4))
    if target.dst is not None:
        fields.append(("dst", 4))
    if target.vc is not None:
        fields.append(("vc", 2))
    if target.mem is not None:
        fields.append(("mem", bin(target.mem_mask).count("1")))
    for name, width in fields:
        b.add_cells(LIB.CMP_BIT, width, FIELD_ACTIVITY[name])
        b.add_cells(LIB.AND2, 1, FIELD_ACTIVITY[name])  # field enable
    if target.head_only:
        # the flit-type gate: two more compare bits (type toggles with
        # the head/body mix on the link)
        b.add_cells(LIB.CMP_BIT, 2, 0.5)
        b.add_cells(LIB.AND2, 1, 0.5)

    # payload counter FSM: log2(states) flops + decode + next-state
    state_bits = max(1, math.ceil(math.log2(config.num_payload_states)))
    b.add_cells(LIB.DFF, state_bits, 0.01)  # holds between triggers
    b.add_cells(LIB.AND2, config.num_payload_states, 0.01)
    b.add_cells(LIB.NAND2, 2 * state_bits, 0.01)

    # XOR tree on the tapped wires (in the data path: toggles with data)
    b.add_cells(LIB.XOR2, config.y_bits, 0.25)

    # trigger/kill-switch gating + target-seen latch
    b.add_cells(LIB.AND2, 2, 0.1)
    b.add_cells(LIB.DFF, 1, 0.1)

    # critical path: compare bit -> AND reduction tree -> trigger -> XOR
    compare_width = max(target.compare_width, 2)
    depth = math.ceil(math.log2(compare_width))
    delay = (
        LIB.DFF.delay_ns
        + LIB.CMP_BIT.delay_ns
        + depth * LIB.NAND2.delay_ns
        + LIB.AND2.delay_ns
        + LIB.XOR2.delay_ns
    ) * TIMING_MARGIN
    return b.with_delay(delay)


def _tasp_calibration() -> tuple[float, float, float]:
    """Per-metric factors anchoring the Dest variant to Table I
    (area 33.516 um^2, dynamic 9.9263 uW, leakage 16.2355 nW)."""
    raw = _tasp_raw(TargetSpec.for_dest(0), TaspConfig())
    return (
        33.516 / raw.area_um2,
        9.9263 / raw.dynamic_uw,
        16.2355 / raw.leakage_nw,
    )


_AREA_CAL, _DYN_CAL, _LEAK_CAL = _tasp_calibration()


def tasp_budget(
    target: TargetSpec, config: TaspConfig = TaspConfig()
) -> Budget:
    """Calibrated area/power/timing of one TASP instance (Table I)."""
    raw = _tasp_raw(target, config)
    return Budget(
        area_um2=raw.area_um2 * _AREA_CAL,
        dynamic_uw=raw.dynamic_uw * _DYN_CAL,
        leakage_nw=raw.leakage_nw * _LEAK_CAL,
        delay_ns=raw.delay_ns,
    )


# ----------------------------------------------------------------------
# Router components (Fig. 8 pies)
# ----------------------------------------------------------------------

def _buffer_bits(cfg: NoCConfig) -> int:
    in_ports = 4 + cfg.concentration
    input_bits = in_ports * cfg.num_vcs * cfg.vc_depth * cfg.flit_bits
    retrans_bits = 4 * cfg.retrans_depth * cfg.flit_bits
    eject_bits = cfg.concentration * cfg.ejection_depth * cfg.flit_bits
    return input_bits + retrans_bits + eject_bits


def buffer_budget(cfg: NoCConfig) -> Budget:
    """Flip-flop based VC buffers: the router's power hog."""
    bits = _buffer_bits(cfg)
    b = Budget()
    # data flops, clock-gated: only written slots toggle
    b.add_cells(LIB.DFF, bits, 0.125)
    return b.with_delay(LIB.DFF.delay_ns * TIMING_MARGIN)


def crossbar_budget(cfg: NoCConfig) -> Budget:
    """A mux tree per output bit: (in_ports-1) MUX2 per bit."""
    in_ports = 4 + cfg.concentration
    out_ports = 4 + cfg.concentration
    muxes = out_ports * cfg.flit_bits * (in_ports - 1)
    b = Budget()
    b.add_cells(LIB.MUX2, muxes, 0.35)
    depth = math.ceil(math.log2(in_ports))
    return b.with_delay(depth * LIB.MUX2.delay_ns * TIMING_MARGIN)


def allocator_budget(cfg: NoCConfig) -> Budget:
    """VC + switch allocators: round-robin arbiters per port."""
    in_ports = 4 + cfg.concentration
    out_ports = 4 + cfg.concentration
    # per output: an in_ports-wide round-robin arbiter (~priority logic)
    sa_gates = out_ports * in_ports * 12
    # per input: a num_vcs-wide arbiter
    in_gates = in_ports * cfg.num_vcs * 12
    # VC allocator: per direction output, (in_ports*num_vcs) requesters
    va_gates = 4 * in_ports * cfg.num_vcs * 6
    b = Budget()
    b.add_cells(LIB.AND2, sa_gates + in_gates + va_gates, 0.2)
    b.add_cells(LIB.DFF, (out_ports + in_ports) * 4, 0.2)
    return b.with_delay(6 * LIB.AND2.delay_ns * TIMING_MARGIN)


def clock_budget(cfg: NoCConfig) -> Budget:
    """Clock distribution: proportional to the flop population."""
    bits = _buffer_bits(cfg)
    b = Budget()
    # clock pin load of every flop plus the local tree buffers
    b.add_cells(LIB.INV, bits // 16, 0.8)
    b.dynamic_uw += bits * 0.009  # clock pin switching (never gated)
    return b


@dataclass(frozen=True)
class RouterBreakdown:
    buffer: Budget
    crossbar: Budget
    allocator: Budget
    clock: Budget

    @property
    def total(self) -> Budget:
        return self.buffer + self.crossbar + self.allocator + self.clock

    def dynamic_shares(self) -> dict[str, float]:
        total = self.total.dynamic_uw
        return {
            "buffer": self.buffer.dynamic_uw / total,
            "crossbar": self.crossbar.dynamic_uw / total,
            "allocator": self.allocator.dynamic_uw / total,
            "clock": self.clock.dynamic_uw / total,
        }

    def leakage_shares(self) -> dict[str, float]:
        total = self.total.leakage_nw
        return {
            "buffer": self.buffer.leakage_nw / total,
            "crossbar": self.crossbar.leakage_nw / total,
            "allocator": self.allocator.leakage_nw / total,
            "clock": self.clock.leakage_nw / total,
        }


def router_breakdown(cfg: NoCConfig) -> RouterBreakdown:
    return RouterBreakdown(
        buffer=buffer_budget(cfg),
        crossbar=crossbar_budget(cfg),
        allocator=allocator_budget(cfg),
        clock=clock_budget(cfg),
    )


# ----------------------------------------------------------------------
# Mitigation hardware (Table II)
# ----------------------------------------------------------------------

def threat_detector_budget(
    cfg: NoCConfig, history_entries: int = 8, ports: int = 1
) -> Budget:
    """Threat source detectors: one per link input port.

    The detector is shared across the router's link inputs (one box in
    the paper's Fig. 5), holding a small fault-history CAM (tag,
    syndrome, flow signature, counters ~= 32 bits/entry), the Fig. 6
    decision FSM, and the NACK advice encoder.
    """
    per_port = Budget()
    entry_bits = 32
    per_port.add_cells(LIB.RAM_BIT, history_entries * entry_bits, 0.5)
    per_port.add_cells(LIB.AND2, 60, 0.1)   # decision FSM + match logic
    per_port.add_cells(LIB.DFF, 8, 0.1)     # verdict/state flops
    per_port.with_delay(
        (LIB.RAM_BIT.delay_ns + 5 * LIB.AND2.delay_ns + LIB.DFF.delay_ns)
        * TIMING_MARGIN
    )
    total = Budget()
    for _ in range(ports):
        total.add(per_port.scaled(1.0))
    total.delay_ns = per_port.delay_ns
    return total


def lob_budget(cfg: NoCConfig, ports: int = 4) -> Budget:
    """L-Ob datapaths: one per link output port.

    Per flit bit: an XOR (invert/scramble) and a 2:1 mux pair selecting
    between straight-through and the shuffle wiring; plus method-select
    control and the flow-method log.
    """
    per_port = Budget()
    per_port.add_cells(LIB.XOR2, cfg.flit_bits, 0.6)
    per_port.add_cells(LIB.MUX2, cfg.flit_bits, 0.6)
    per_port.add_cells(LIB.AND2, 20, 0.1)           # method control
    per_port.add_cells(LIB.RAM_BIT, 16 * 8, 0.05)   # flow-method log
    per_port.with_delay(
        (LIB.XOR2.delay_ns + 2 * LIB.MUX2.delay_ns) * TIMING_MARGIN
    )
    total = Budget()
    for _ in range(ports):
        total.add(per_port.scaled(1.0))
    total.delay_ns = per_port.delay_ns
    return total


# ----------------------------------------------------------------------
# NoC roll-up (Fig. 8 right)
# ----------------------------------------------------------------------

def global_wire_area(cfg: NoCConfig) -> float:
    """Area of the inter-router links (dominates NoC area, Fig. 8)."""
    wires_per_link = 72  # SECDED codeword width
    return cfg.num_links * wires_per_link * LINK_LENGTH_UM * WIRE_PITCH_UM


@dataclass(frozen=True)
class NoCBudget:
    """Chip-level totals."""

    router: Budget
    num_routers: int
    wire_area_um2: float
    tasp: Budget
    num_tasps: int

    @property
    def active_area_um2(self) -> float:
        return self.router.area_um2 * self.num_routers

    @property
    def total_area_um2(self) -> float:
        return (
            self.active_area_um2
            + self.wire_area_um2
            + self.tasp.area_um2 * self.num_tasps
        )

    @property
    def total_dynamic_uw(self) -> float:
        return (
            self.router.dynamic_uw * self.num_routers
            + self.tasp.dynamic_uw * self.num_tasps
        )

    def area_shares(self) -> dict[str, float]:
        total = self.total_area_um2
        return {
            "global_wire": self.wire_area_um2 / total,
            "active": self.active_area_um2 / total,
            "tasp": self.tasp.area_um2 * self.num_tasps / total,
        }

    def dynamic_shares(self) -> dict[str, float]:
        total = self.total_dynamic_uw
        return {
            "routers": self.router.dynamic_uw * self.num_routers / total,
            "tasp": self.tasp.dynamic_uw * self.num_tasps / total,
        }


def noc_budget(
    cfg: NoCConfig,
    target: TargetSpec | None = None,
    num_tasps: int = 1,
) -> NoCBudget:
    target = target or TargetSpec.for_dest(0)
    return NoCBudget(
        router=router_breakdown(cfg).total,
        num_routers=cfg.num_routers,
        wire_area_um2=global_wire_area(cfg),
        tasp=tasp_budget(target),
        num_tasps=num_tasps,
    )
