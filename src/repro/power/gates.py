"""A 40 nm-class standard-cell library for analytic area/power/timing.

**Substitution notice (DESIGN.md §2).**  The paper synthesizes its RTL
with Synopsys Design Compiler against TSMC 40 nm libraries (1.0 V,
2 GHz).  Neither tool nor library is redistributable, so this module
provides an analytic gate-level estimator: each block is composed
structurally from standard cells, and a handful of macro-cell constants
are calibrated so the *anchor points* the paper publishes (the Dest and
Full TASP variants of Table I) land on the reported values.  All other
numbers are then genuine predictions of the structural model — that is
what EXPERIMENTS.md compares against the paper.

Units: area um^2, dynamic power uW (at 2 GHz, activity given per use),
leakage nW, delay ns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    """One standard cell (per-instance numbers)."""

    name: str
    area_um2: float
    #: dynamic power at 2 GHz if the cell toggled every cycle
    dynamic_uw: float
    leakage_nw: float
    delay_ns: float


@dataclass(frozen=True)
class GateLibrary:
    """40 nm-class cells @ 1.0 V; representative of TSMC 40 nm LP."""

    INV: Cell = Cell("INV", 0.53, 0.40, 0.40, 0.010)
    NAND2: Cell = Cell("NAND2", 0.79, 0.55, 0.55, 0.015)
    AND2: Cell = Cell("AND2", 1.06, 0.60, 0.60, 0.020)
    OR2: Cell = Cell("OR2", 1.06, 0.60, 0.60, 0.020)
    XOR2: Cell = Cell("XOR2", 1.58, 1.10, 0.90, 0.025)
    XNOR2: Cell = Cell("XNOR2", 1.58, 1.10, 0.90, 0.025)
    MUX2: Cell = Cell("MUX2", 1.32, 0.80, 0.70, 0.020)
    DFF: Cell = Cell("DFF", 4.50, 3.00, 2.50, 0.040)
    #: register-file/SRAM bit with read/write ports (buffer arrays)
    RAM_BIT: Cell = Cell("RAM_BIT", 0.60, 0.055, 0.16, 0.0)

    # -- calibrated macro cells (anchored to Table I, see module doc) -----
    #: one comparator bit of the trojan's (heavily optimized) target
    #: block: area slope between the Dest (4-bit) and Full (42-bit)
    #: variants of Table I
    CMP_BIT: Cell = Cell("CMP_BIT", 0.446, 0.82, 0.369, 0.012)

    def cells(self) -> dict[str, Cell]:
        return {
            name: getattr(self, name)
            for name in (
                "INV",
                "NAND2",
                "AND2",
                "OR2",
                "XOR2",
                "XNOR2",
                "MUX2",
                "DFF",
                "RAM_BIT",
                "CMP_BIT",
            )
        }


#: shared default library
LIB = GateLibrary()

#: operating point (matches the paper's synthesis corner)
SUPPLY_V = 1.0
CLOCK_GHZ = 2.0
#: the clock period available to any logic on the LT path
CLOCK_PERIOD_NS = 1.0 / CLOCK_GHZ

#: global-wire geometry for the NoC area roll-up (Fig. 8):
#: per-hop link length and effective wire pitch (incl. spacing/shielding)
LINK_LENGTH_UM = 2000.0
WIRE_PITCH_UM = 0.85


@dataclass(slots=True)
class Budget:
    """Accumulated area/power/timing of a composed block."""

    area_um2: float = 0.0
    dynamic_uw: float = 0.0
    leakage_nw: float = 0.0
    delay_ns: float = 0.0

    def add_cells(
        self, cell: Cell, count: float, activity: float = 1.0
    ) -> "Budget":
        """Add ``count`` instances of ``cell`` toggling with probability
        ``activity`` per cycle."""
        if count < 0 or not 0.0 <= activity <= 1.0:
            raise ValueError("bad count/activity")
        self.area_um2 += cell.area_um2 * count
        self.dynamic_uw += cell.dynamic_uw * count * activity
        self.leakage_nw += cell.leakage_nw * count
        return self

    def add(self, other: "Budget") -> "Budget":
        self.area_um2 += other.area_um2
        self.dynamic_uw += other.dynamic_uw
        self.leakage_nw += other.leakage_nw
        self.delay_ns = max(self.delay_ns, other.delay_ns)
        return self

    def with_delay(self, delay_ns: float) -> "Budget":
        self.delay_ns = max(self.delay_ns, delay_ns)
        return self

    def scaled(self, factor: float) -> "Budget":
        return Budget(
            area_um2=self.area_um2 * factor,
            dynamic_uw=self.dynamic_uw * factor,
            leakage_nw=self.leakage_nw * factor,
            delay_ns=self.delay_ns,
        )

    def __add__(self, other: "Budget") -> "Budget":
        return Budget(
            self.area_um2 + other.area_um2,
            self.dynamic_uw + other.dynamic_uw,
            self.leakage_nw + other.leakage_nw,
            max(self.delay_ns, other.delay_ns),
        )
