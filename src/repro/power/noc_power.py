"""Roll-ups and report builders for the area/power evaluation.

These produce the rows/series of Table I, Table II, Fig. 8 and Fig. 9
in a printable (and testable) structured form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.noc.config import NoCConfig
from repro.power.blocks import (
    lob_budget,
    noc_budget,
    router_breakdown,
    tasp_budget,
    threat_detector_budget,
)
from repro.power.gates import Budget, CLOCK_PERIOD_NS

#: the paper's six TASP variants (Table I / Fig. 9) with representative
#: field values — area/power depend only on the compared widths
PAPER_TARGETS: dict[str, TargetSpec] = {
    "Full": TargetSpec.full(0, 15, 2, 0x100),
    "Dest": TargetSpec.for_dest(15),
    "Src": TargetSpec.for_src(0),
    "Dest_Src": TargetSpec.for_dest_src(0, 15),
    "Mem": TargetSpec.for_mem(0x100),
    "VC": TargetSpec.for_vc(2),
}

#: Table I as published (area um^2, dynamic uW, leakage nW, timing ns)
PAPER_TABLE1: dict[str, tuple[float, float, float, float]] = {
    "Full": (50.45, 25.5304, 30.2694, 0.21),
    "Dest": (33.516, 9.9263, 16.2355, 0.21),
    "Src": (33.516, 9.9263, 16.2355, 0.21),
    "Dest_Src": (37.044, 10.9416, 16.2498, 0.21),
    "Mem": (44.4528, 10.1997, 17.0468, 0.21),
    "VC": (31.9284, 10.5953, 15.0765, 0.21),
}


@dataclass(frozen=True)
class VariantRow:
    """One Table I column: a TASP target variant."""

    kind: str
    compare_width: int
    budget: Budget

    @property
    def meets_timing(self) -> bool:
        """Fits within the LT stage at 2 GHz (paper: 0.5 ns window)."""
        return self.budget.delay_ns <= CLOCK_PERIOD_NS


def table1_rows(config: TaspConfig = TaspConfig()) -> list[VariantRow]:
    """Our model's Table I."""
    return [
        VariantRow(
            kind=kind,
            compare_width=spec.compare_width,
            budget=tasp_budget(spec, config),
        )
        for kind, spec in PAPER_TARGETS.items()
    ]


@dataclass(frozen=True)
class MitigationRow:
    """One Table II row: a mitigation module."""

    name: str
    budget: Budget
    pct_router_area: float
    pct_router_dynamic: float

    @property
    def meets_timing(self) -> bool:
        return self.budget.delay_ns <= CLOCK_PERIOD_NS


def table2_rows(cfg: NoCConfig) -> list[MitigationRow]:
    """Our model's Table II: threat detector + L-Ob overhead."""
    router = router_breakdown(cfg).total
    rows = []
    for name, budget in (
        ("Threat detector", threat_detector_budget(cfg)),
        ("L-Ob (4 ports)", lob_budget(cfg)),
    ):
        rows.append(
            MitigationRow(
                name=name,
                budget=budget,
                pct_router_area=100 * budget.area_um2 / router.area_um2,
                pct_router_dynamic=100 * budget.dynamic_uw / router.dynamic_uw,
            )
        )
    total = threat_detector_budget(cfg) + lob_budget(cfg)
    rows.append(
        MitigationRow(
            name="Total mitigation",
            budget=total,
            pct_router_area=100 * total.area_um2 / router.area_um2,
            pct_router_dynamic=100 * total.dynamic_uw / router.dynamic_uw,
        )
    )
    return rows


@dataclass(frozen=True)
class Fig8Report:
    """All four pies of Fig. 8."""

    router_dynamic_shares: dict[str, float]
    router_leakage_shares: dict[str, float]
    noc_area_shares: dict[str, float]
    noc_dynamic_shares_all_links: dict[str, float]


def fig8_report(cfg: NoCConfig) -> Fig8Report:
    breakdown = router_breakdown(cfg)
    tasp = tasp_budget(PAPER_TARGETS["Dest"])
    router = breakdown.total

    def with_tasp(shares: dict[str, float], tasp_value: float, total: float):
        scaled = {k: v * total / (total + tasp_value) for k, v in shares.items()}
        scaled["tasp"] = tasp_value / (total + tasp_value)
        return scaled

    dyn = with_tasp(
        breakdown.dynamic_shares(), tasp.dynamic_uw, router.dynamic_uw
    )
    leak = with_tasp(
        breakdown.leakage_shares(), tasp.leakage_nw, router.leakage_nw
    )
    chip = noc_budget(cfg, num_tasps=cfg.num_links)
    return Fig8Report(
        router_dynamic_shares=dyn,
        router_leakage_shares=leak,
        noc_area_shares=chip.area_shares(),
        noc_dynamic_shares_all_links=chip.dynamic_shares(),
    )
