"""repro — reproduction of Boraten & Kodi, *Mitigation of Denial of
Service Attack with Hardware Trojans in NoC Architectures* (IPDPS 2016).

The package builds, from scratch, everything the paper's evaluation
needs:

* :mod:`repro.noc` — a cycle-accurate concentrated-mesh NoC simulator
  (5-stage VC routers, credits, SECDED links, selective-repeat
  retransmission);
* :mod:`repro.core` — the paper's contribution: the TASP hardware
  trojan, the threat source detector, and L-Ob switch-to-switch
  obfuscation;
* :mod:`repro.ecc`, :mod:`repro.faults` — SECDED codec, fault models
  and BIST;
* :mod:`repro.baselines` — e2e obfuscation, TDM QoS, Ariadne-style
  rerouting;
* :mod:`repro.traffic` — synthetic patterns and PARSEC/SPLASH-like
  application profiles;
* :mod:`repro.power` — an analytic TSMC-40nm-class area/power/timing
  model;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro import (NoCConfig, Network, Packet, TargetSpec,
                       TaspTrojan, build_mitigated_network, Direction)

    net = build_mitigated_network(NoCConfig())
    trojan = TaspTrojan(TargetSpec.for_dest(15))
    trojan.enable()
    net.attach_tamperer((0, Direction.EAST), trojan)
    net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
    net.run_until_drained(5000)
    print(net.stats.summary())
"""

from repro.baselines import (
    E2EConfig,
    E2EObfuscator,
    TdmConfig,
    TdmPolicy,
    apply_rerouting,
    updown_table,
)
from repro.core import (
    DetectorConfig,
    Granularity,
    LinkVerdict,
    MitigationConfig,
    ObMethod,
    TargetSpec,
    TaspConfig,
    TaspState,
    TaspTrojan,
    ThreatDetector,
    build_mitigated_network,
)
from repro.ecc import SECDED_72_64, DecodeStatus, Secded
from repro.faults import (
    BistScanner,
    BistVerdict,
    PermanentFault,
    StuckAtKind,
    TransientFaultModel,
)
from repro.noc import (
    Direction,
    Flit,
    FlitType,
    Network,
    NoCConfig,
    Packet,
    PAPER_CONFIG,
)
from repro.traffic import (
    AppTraceSource,
    PROFILES,
    SyntheticConfig,
    SyntheticSource,
    Trace,
    TraceReplaySource,
    record_trace,
)

__version__ = "1.0.0"

__all__ = [
    "E2EConfig",
    "E2EObfuscator",
    "TdmConfig",
    "TdmPolicy",
    "apply_rerouting",
    "updown_table",
    "DetectorConfig",
    "Granularity",
    "LinkVerdict",
    "MitigationConfig",
    "ObMethod",
    "TargetSpec",
    "TaspConfig",
    "TaspState",
    "TaspTrojan",
    "ThreatDetector",
    "build_mitigated_network",
    "SECDED_72_64",
    "DecodeStatus",
    "Secded",
    "BistScanner",
    "BistVerdict",
    "PermanentFault",
    "StuckAtKind",
    "TransientFaultModel",
    "Direction",
    "Flit",
    "FlitType",
    "Network",
    "NoCConfig",
    "Packet",
    "PAPER_CONFIG",
    "AppTraceSource",
    "PROFILES",
    "SyntheticConfig",
    "SyntheticSource",
    "Trace",
    "TraceReplaySource",
    "record_trace",
    "__version__",
]
