"""Comparison systems the paper evaluates against.

* :mod:`repro.baselines.e2e` — Fort-NoCs-style end-to-end obfuscation
  (fails against header-targeting link trojans, Fig. 11a);
* :mod:`repro.baselines.tdm` — SurfNoC-style TDM QoS (contains but does
  not stop the attack, Fig. 12a);
* :mod:`repro.baselines.reroute` — Ariadne-style disable-and-reroute
  (works but sacrifices bandwidth/path diversity, Fig. 10).
"""

from repro.baselines.e2e import E2EConfig, E2EObfuscator
from repro.baselines.reroute import (
    UnroutableError,
    apply_rerouting,
    updown_table,
)
from repro.baselines.tdm import TdmConfig, TdmPolicy

__all__ = [
    "E2EConfig",
    "E2EObfuscator",
    "UnroutableError",
    "apply_rerouting",
    "updown_table",
    "TdmConfig",
    "TdmPolicy",
]
