"""Fort-NoCs-style end-to-end protection (the [19] baseline).

Fort-NoCs layers three defenses at the network interfaces:

1. **data scrambling** — packet data is XOR-scrambled with a
   per-(source, destination) key before injection and unscrambled at
   ejection.  The crucial limitation the paper exploits (Fig. 11a,
   "when e2e obfuscation fails"): routing needs the
   source/destination/VC header fields in the clear at every hop, so an
   e2e scheme cannot hide them — a link trojan whose target block taps
   exactly those fields still triggers.  We scramble the memory-address
   field of head flits and the payload of body/tail flits.
2. **packet certification** — a keyed checksum appended to the packet
   (one extra flit of bandwidth) lets the receiving NI detect silent
   data corruption and misdelivery end-to-end.  This catches what a
   miscorrecting (3-bit) trojan payload does, but detection at the
   endpoint cannot *prevent* the DoS the paper's 2-bit payload causes.
3. *node obfuscation* — periodic logical-to-physical placement changes;
   modelled separately by :mod:`repro.core.migration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.flit import Flit, HeaderLayout, MEM_FIELD, PAPER_LAYOUT, Packet
from repro.util.bits import extract_field, insert_field, mask
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class E2EConfig:
    #: root key the NIs share (distributed at boot in Fort-NoCs)
    key_seed: int = 0xE2E
    scramble_mem: bool = True
    scramble_payload: bool = True
    #: append a keyed certificate flit to every packet (layer 2)
    certify: bool = False


@dataclass(slots=True)
class CertificateFailure:
    """One end-to-end integrity violation caught at the receiving NI."""

    pkt_id: int
    cycle: int
    at_core: int
    reason: str


class E2EObfuscator:
    """Installed on a :class:`repro.noc.network.Network` via the ``e2e``
    constructor argument; the network calls :meth:`prepare_packet` at
    packet submission, :meth:`encode_flit` per injected flit and
    :meth:`decode_flit` per ejected flit."""

    def __init__(
        self,
        config: E2EConfig = E2EConfig(),
        layout: HeaderLayout = PAPER_LAYOUT,
    ):
        self.config = config
        #: wire layout of head flits; must match the network's, or the
        #: mem-field scramble would XOR routing bits instead
        self.layout = layout
        self.flits_encoded = 0
        self.certificates_issued = 0
        self.certificates_verified = 0
        self.certificate_failures: list[CertificateFailure] = []
        self._key_cache: dict[tuple[int, int], int] = {}
        #: receiver-side reassembly for certificate checking
        self._rx_words: dict[int, list[int]] = {}
        self._expected: dict[int, tuple[int, int, int, int]] = {}

    def _key(self, src_router: int, dst_router: int) -> int:
        pair = (src_router, dst_router)
        key = self._key_cache.get(pair)
        if key is None:
            key = derive_seed(self.config.key_seed, pair)
            self._key_cache[pair] = key
        return key

    # -- certification (layer 2) -------------------------------------------
    def _certificate(
        self, src_core: int, dst_core: int, mem: int, payload: list[int]
    ) -> int:
        return derive_seed(
            self.config.key_seed,
            "cert",
            src_core,
            dst_core,
            mem,
            tuple(payload),
        ) & mask(64)

    def prepare_packet(self, packet: Packet) -> None:
        """NI-side packet processing before flit construction."""
        if not self.config.certify:
            return
        cert = self._certificate(
            packet.src_core, packet.dst_core, packet.mem_addr, packet.payload
        )
        packet.payload = list(packet.payload) + [cert]
        self.certificates_issued += 1
        self._expected[packet.pkt_id] = (
            packet.src_core,
            packet.dst_core,
            packet.mem_addr,
            packet.num_flits(),
        )

    def _verify_on_tail(self, flit: Flit, cycle: int, at_core: int) -> None:
        meta = self._expected.get(flit.pkt_id)
        if meta is None:
            return
        words = self._rx_words.pop(flit.pkt_id, [])
        src_core, dst_core, mem, num_flits = meta
        del self._expected[flit.pkt_id]
        failure = None
        if at_core != dst_core:
            failure = "misdelivered"
        elif len(words) != num_flits - 1:
            failure = "flit count mismatch"
        else:
            *payload, cert = words
            expected = self._certificate(src_core, at_core, mem, payload)
            if cert != expected:
                failure = "certificate mismatch"
        if failure is None:
            self.certificates_verified += 1
        else:
            self.certificate_failures.append(
                CertificateFailure(flit.pkt_id, cycle, at_core, failure)
            )

    # -- network hooks ----------------------------------------------------
    def encode_flit(self, flit: Flit) -> None:
        self._apply(flit)
        self.flits_encoded += 1

    def decode_flit(
        self, flit: Flit, cycle: int = 0, at_core: int = -1
    ) -> None:
        # XOR scrambling is an involution.
        self._apply(flit)
        if not self.config.certify:
            return
        if not flit.is_head:
            self._rx_words.setdefault(flit.pkt_id, []).append(flit.data)
        if flit.is_tail:
            self._verify_on_tail(flit, cycle, at_core)

    def _apply(self, flit: Flit) -> None:
        key = self._key(flit.src_router, flit.dst_router)
        if flit.is_head:
            if self.config.scramble_mem:
                mem_field = self.layout.mem
                mem = extract_field(flit.data, *mem_field)
                mem ^= key & mask(mem_field[1])
                flit.data = insert_field(flit.data, *mem_field, mem)
                flit.mem_addr = mem
        elif self.config.scramble_payload:
            flit.data ^= key & mask(64)
