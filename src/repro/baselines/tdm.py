"""SurfNoC-style TDM QoS baseline (the [14] comparison, Fig. 12a).

The NoC is partitioned into time-division domains: crossbar and link
cycles alternate between domains, and each domain owns a disjoint slice
of the VCs, so traffic in one domain can neither occupy the other's
buffers nor steal its cycles (non-interference).

Against TASP this *contains* the attack — the targeted domain's
resources saturate, but the other domain keeps running at its
provisioned rate — yet deadlock still occurs inside the victim domain,
which is the paper's argument that QoS alone is not a mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.flit import Flit
from repro.noc.router import SchedulingPolicy


@dataclass(frozen=True)
class TdmConfig:
    num_domains: int = 2

    def __post_init__(self) -> None:
        if self.num_domains < 2:
            raise ValueError("TDM needs at least two domains")


class TdmPolicy(SchedulingPolicy):
    """Time-division scheduling: domain ``d`` owns cycles where
    ``cycle % num_domains == d`` and VCs ``[d * num_vcs/D, ...)``."""

    def __init__(self, config: TdmConfig, num_vcs: int):
        if num_vcs % config.num_domains != 0:
            raise ValueError(
                "num_vcs must divide evenly across TDM domains"
            )
        self.config = config
        self.num_vcs = num_vcs
        self.vcs_per_domain = num_vcs // config.num_domains

    # -- domain/VC mapping ---------------------------------------------
    def vc_partition(self, domain: int) -> range:
        base = domain * self.vcs_per_domain
        return range(base, base + self.vcs_per_domain)

    def vc_for(self, domain: int, index: int = 0) -> int:
        """A VC belonging to ``domain`` (for traffic generators)."""
        return domain * self.vcs_per_domain + index % self.vcs_per_domain

    def domain_of_vc(self, vc: int) -> int:
        return vc // self.vcs_per_domain

    def _owns_cycle(self, flit: Flit, cycle: int) -> bool:
        return cycle % self.config.num_domains == flit.domain

    # -- SchedulingPolicy hooks ---------------------------------------------
    def flit_may_use_switch(self, flit: Flit, cycle: int) -> bool:
        return self._owns_cycle(flit, cycle)

    def flit_may_use_link(self, flit: Flit, cycle: int) -> bool:
        return self._owns_cycle(flit, cycle)

    def allowed_out_vcs(self, flit: Flit, num_vcs: int) -> range:
        return self.vc_partition(flit.domain)

    def may_inject(self, flit: Flit, cycle: int) -> bool:
        if flit.vc_class not in self.vc_partition(flit.domain):
            raise ValueError(
                f"flit of domain {flit.domain} injected on vc "
                f"{flit.vc_class} outside its TDM partition"
            )
        return True

    def may_admit_retrans(self, flit: Flit, retrans) -> bool:
        """Partition retransmission-buffer slots per domain: a domain may
        hold at most ``depth / num_domains`` entries, so a trojan pinning
        the victim domain's slots never starves the other domain."""
        quota = retrans.depth // self.config.num_domains
        held = sum(1 for entry in retrans if entry.flit.domain == flit.domain)
        return held < quota
