"""Ariadne-style rerouting baseline (Fig. 10 comparison).

When a link is condemned (permanent fault — or, in this baseline's
policy, a detected trojan), traffic is routed around it.  We implement
the classic **up*/down*** routing reconfiguration Ariadne distributes
after a failure: build a BFS spanning tree of the surviving topology,
orient every edge "up" toward the root, and allow only paths consisting
of zero or more up-links followed by zero or more down-links — a
turn-restriction that is deadlock-free with wormhole flow control.

The cost the paper highlights: every avoided link adds hops and removes
path diversity, so performance falls off quickly as the infected-link
percentage grows — which is exactly what Fig. 10 compares against
continuing to use infected links under L-Ob.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.noc.routing import TableRouting
from repro.noc.topology import Direction, LinkKey, neighbor, neighbors


class UnroutableError(RuntimeError):
    """The surviving topology cannot connect all routers."""


def _bfs_levels(
    cfg: NoCConfig, blocked: set[LinkKey], root: int = 0
) -> dict[int, int]:
    """BFS levels over routers, using only links usable in *either*
    direction (the spanning tree is undirected)."""
    levels = {root: 0}
    frontier = deque([root])
    while frontier:
        cur = frontier.popleft()
        for direction, nxt in neighbors(cfg, cur).items():
            if nxt in levels:
                continue
            # an undirected edge survives if at least one direction does
            fwd = (cur, direction) not in blocked
            rev = (nxt, _opposite(direction)) not in blocked
            if fwd or rev:
                levels[nxt] = levels[cur] + 1
                frontier.append(nxt)
    return levels


def _opposite(direction: Direction) -> Direction:
    from repro.noc.topology import OPPOSITE

    return OPPOSITE[direction]


def _is_up_move(levels: dict[int, int], src: int, dst: int) -> bool:
    """Moving src->dst is an "up" move if dst is closer to the root
    (ties broken by id, the standard up*/down* convention)."""
    return (levels[dst], dst) < (levels[src], src)


def updown_table(
    cfg: NoCConfig,
    disabled: Iterable[LinkKey] = (),
    root: int = 0,
) -> TableRouting:
    """Compute a complete up*/down* next-hop table avoiding ``disabled``
    directed links.

    Raises :class:`UnroutableError` when some pair has no legal path
    (e.g. the failures disconnect the mesh).

    A link condemned in one direction is avoided in *both*: up*/down*'s
    deadlock argument assumes bidirectional channels, and a
    reconfiguration that disables whole links is what Ariadne-class
    schemes distribute.
    """
    blocked: set[LinkKey] = set()
    for src, direction in disabled:
        blocked.add((src, direction))
        dst = neighbor(cfg, src, direction)
        if dst is not None:
            blocked.add((dst, _opposite(direction)))
    levels = _bfs_levels(cfg, blocked, root)
    if len(levels) != cfg.num_routers:
        missing = set(range(cfg.num_routers)) - set(levels)
        raise UnroutableError(f"routers unreachable from root: {missing}")

    # State graph: (router, still_going_up).  An up-move keeps phase;
    # a down-move flips to the down phase; down->up is illegal.
    table: dict[tuple[int, int], Direction] = {}
    for dst in range(cfg.num_routers):
        # Backward BFS from dst over the state graph to find, for every
        # (router, phase=up) start, the first hop of a shortest legal
        # path.  We search forward from each source instead for clarity;
        # the meshes are small (<= 16 routers).
        for src in range(cfg.num_routers):
            if src == dst:
                continue
            first = _first_hop(cfg, blocked, levels, src, dst)
            if first is None:
                raise UnroutableError(
                    f"no up*/down* path from {src} to {dst}"
                )
            table[(src, dst)] = first
    return TableRouting(cfg, table)


def _first_hop(
    cfg: NoCConfig,
    blocked: set[LinkKey],
    levels: dict[int, int],
    src: int,
    dst: int,
) -> Optional[Direction]:
    start = (src, True)
    parents: dict[tuple[int, bool], tuple[tuple[int, bool], Direction]] = {}
    seen = {start}
    frontier = deque([start])
    goal: Optional[tuple[int, bool]] = None
    while frontier:
        state = frontier.popleft()
        node, going_up = state
        if node == dst:
            goal = state
            break
        for direction, nxt in neighbors(cfg, node).items():
            if (node, direction) in blocked:
                continue
            up_move = _is_up_move(levels, node, nxt)
            if up_move and not going_up:
                continue  # down -> up turn forbidden
            nxt_state = (nxt, going_up and up_move)
            if nxt_state in seen:
                continue
            seen.add(nxt_state)
            parents[nxt_state] = (state, direction)
            frontier.append(nxt_state)
    if goal is None:
        return None
    # Walk back to the first hop.
    state = goal
    direction = None
    while state != start:
        state, direction = parents[state]
    return direction


def apply_rerouting(
    network: Network, infected: Iterable[LinkKey], root: int = 0
) -> TableRouting:
    """Install the Ariadne baseline on a network: disable the infected
    links and reprogram every router with the up*/down* table."""
    infected = list(infected)
    table = updown_table(network.cfg, infected, root)
    disabled: set[LinkKey] = set()
    for src, direction in infected:
        disabled.add((src, direction))
        dst = neighbor(network.cfg, src, direction)
        if dst is not None:
            disabled.add((dst, _opposite(direction)))
    for key in disabled:
        network.disable_link(key)
    network.set_route_fn(table.route)
    network.routing_table = table
    return table
