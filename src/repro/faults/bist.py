"""Built-in self test (BIST) for links.

The threat detector (paper Fig. 6) falls back on BIST when a flit faults
repeatedly: "notify built-in-self-test (BIST) to scan for a permanent
fault because repetitive transient faults are unlikely".  The scanner
drives deterministic test patterns (walking ones, walking zeros,
alternating, plus random words) through the link's tamper chain and
compares what arrives:

* bit positions that fail **consistently** across patterns exercising
  them → ``PERMANENT`` (the link must be disabled / rerouted around);
* **no failures at all** → ``CLEAN`` — but if runtime traffic keeps
  faulting on a BIST-clean link, the fault source is target-activated,
  i.e. a trojan;
* failures at **inconsistent** positions → ``INCONSISTENT`` (a trojan
  that happened to trigger on a test pattern, or a heavy transient
  storm).

Note a target-activated trojan *can* fire during a scan when a test
pattern accidentally matches its target; narrower targets make this more
likely (4-bit destination targets match 1/16 of random words).  The
ablation benches quantify that trade-off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.bits import mask
from repro.util.rng import SeededStream


class BistVerdict(enum.Enum):
    CLEAN = "clean"
    PERMANENT = "permanent"
    INCONSISTENT = "inconsistent"


@dataclass(slots=True)
class BistReport:
    """Outcome of one scan."""

    verdict: BistVerdict
    #: wire indices that failed on every pattern exercising them
    permanent_positions: tuple[int, ...] = ()
    #: wire indices that failed at least once
    faulted_positions: tuple[int, ...] = ()
    patterns_sent: int = 0
    patterns_failed: int = 0
    #: cycles the scan occupied the link
    duration_cycles: int = 0
    details: dict = field(default_factory=dict)


def walking_patterns(width: int) -> list[int]:
    """Walking-ones then walking-zeros over ``width`` wires."""
    ones = [1 << i for i in range(width)]
    zeros = [mask(width) ^ (1 << i) for i in range(width)]
    return ones + zeros


def alternating_patterns(width: int) -> list[int]:
    a = 0
    for i in range(0, width, 2):
        a |= 1 << i
    return [a, mask(width) ^ a]


class BistScanner:
    """Scan one link's tamper chain with test patterns.

    Parameters
    ----------
    width:
        Link (codeword) width in wires.
    stream:
        Seeded stream for the random-pattern phase.
    random_patterns:
        How many uniform random words to add after the deterministic
        phases.
    cycles_per_pattern:
        Link cycles consumed per pattern (scan duration bookkeeping).
    """

    def __init__(
        self,
        width: int,
        stream: SeededStream,
        random_patterns: int = 16,
        cycles_per_pattern: int = 1,
        confirm_probes: int = 3,
    ):
        self.width = width
        self._stream = stream
        self.random_patterns = random_patterns
        self.cycles_per_pattern = cycles_per_pattern
        self.confirm_probes = confirm_probes
        self.scans_run = 0

    def _patterns(self) -> list[int]:
        pats = walking_patterns(self.width)
        pats += alternating_patterns(self.width)
        pats += [
            self._stream.bits(self.width) for _ in range(self.random_patterns)
        ]
        return pats

    def scan(self, tamper, start_cycle: int = 0) -> BistReport:
        """Run a full scan through ``tamper`` (a callable
        ``(codeword, cycle) -> codeword``, e.g. ``Link.apply_tamper``)."""
        self.scans_run += 1
        patterns = self._patterns()

        # For each wire: did any pattern exercise it with a 0 / with a 1,
        # and did it ever arrive wrong / ever arrive right?
        ever_wrong: set[int] = set()
        ever_right: set[int] = set()
        failures = 0

        cycle = start_cycle
        for sent in patterns:
            received = tamper(sent, cycle)
            cycle += self.cycles_per_pattern
            diff = sent ^ received
            if diff:
                failures += 1
            for pos in range(self.width):
                if diff >> pos & 1:
                    ever_wrong.add(pos)
                else:
                    ever_right.add(pos)

        permanent = tuple(sorted(ever_wrong - ever_right))
        faulted = tuple(sorted(ever_wrong))

        # A stuck-at wire is only wrong when driven against its polarity,
        # so "permanent" here means: every time it was observed wrong it
        # never delivered that polarity correctly.  Refine: a wire is
        # permanent-suspect if, restricted to the patterns where it was
        # wrong, the sent polarity is constant and that polarity *always*
        # failed.  The two-sided walking patterns guarantee both
        # polarities are exercised, so the simple set difference above is
        # exact for stuck-at faults but we additionally re-drive suspect
        # wires to confirm.
        confirmed: list[int] = []
        for pos in faulted:
            # Re-drive each polarity several times: a stuck-at wire fails
            # one polarity deterministically; transient noise (or a
            # trojan that happened to fire) does not repeat.
            wrong0 = 0
            wrong1 = 0
            for _ in range(self.confirm_probes):
                r0 = tamper(0, cycle)
                cycle += self.cycles_per_pattern
                r1 = tamper(1 << pos, cycle)
                cycle += self.cycles_per_pattern
                wrong0 += (r0 ^ 0) >> pos & 1
                wrong1 += (r1 ^ (1 << pos)) >> pos & 1
            stuck_at_one = wrong0 == self.confirm_probes and wrong1 == 0
            stuck_at_zero = wrong1 == self.confirm_probes and wrong0 == 0
            if stuck_at_one or stuck_at_zero:
                confirmed.append(pos)

        if confirmed:
            verdict = BistVerdict.PERMANENT
        elif failures == 0:
            verdict = BistVerdict.CLEAN
        else:
            verdict = BistVerdict.INCONSISTENT

        return BistReport(
            verdict=verdict,
            permanent_positions=tuple(confirmed),
            faulted_positions=faulted,
            patterns_sent=len(patterns),
            patterns_failed=failures,
            duration_cycles=cycle - start_cycle,
            details={"permanent_candidates": permanent},
        )
