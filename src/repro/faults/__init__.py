"""Fault substrate: the three ways link bits go wrong (paper Fig. 2).

* :class:`TransientFaultModel` — soft errors: rare, randomly-placed
  single (occasionally multi) bit flips.
* :class:`PermanentFault` — stuck-at wires that corrupt every traversal
  whose payload disagrees with the stuck value.
* Hardware-trojan faults are injected by :class:`repro.core.tasp.TaspTrojan`,
  which implements the same :class:`LinkTamperer` interface.

:class:`repro.faults.bist.BistScanner` probes a link with test patterns to
tell permanent faults apart from trojans (trojans are target-activated and
move their fault positions, so scans come back clean or inconsistent).
"""

from repro.faults.models import (
    LinkKillFault,
    LinkTamperer,
    PermanentFault,
    StuckAtKind,
    TransientFaultModel,
)
from repro.faults.bist import BistReport, BistScanner, BistVerdict

__all__ = [
    "LinkKillFault",
    "LinkTamperer",
    "PermanentFault",
    "StuckAtKind",
    "TransientFaultModel",
    "BistReport",
    "BistScanner",
    "BistVerdict",
]
