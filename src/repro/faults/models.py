"""Link fault models.

Every entity that can corrupt bits in flight — soft-error processes,
stuck-at wires and the TASP trojan itself — implements the
:class:`LinkTamperer` protocol and is attached to a
:class:`repro.noc.link.Link`.  At launch time the link folds the tamper
chain over the outgoing codeword, so faults compose (a trojan can coexist
with background transient noise, which is exactly the camouflage TASP
relies on).
"""

from __future__ import annotations

import enum
from typing import Protocol, runtime_checkable

from repro.util.bits import mask
from repro.util.rng import SeededStream


@runtime_checkable
class LinkTamperer(Protocol):
    """Anything that may alter a codeword crossing a link."""

    def tamper(self, codeword: int, cycle: int) -> int:
        """Return the (possibly corrupted) codeword seen downstream."""
        ...


class TransientFaultModel:
    """Memoryless soft-error process on one link.

    Parameters
    ----------
    width:
        Codeword width in bits (fault positions are uniform over it).
    flip_probability:
        Per-traversal probability that at least one bit flips.
    double_fraction:
        Conditional probability that a fault event flips two bits instead
        of one (two flips defeat SECDED and force a retransmission, just
        like the trojan — which is why the threat detector needs history,
        not a single observation, to tell them apart).
    stream:
        Seeded random stream.
    """

    __slots__ = ("width", "flip_probability", "double_fraction", "_stream",
                 "events", "bits_flipped")

    def __init__(
        self,
        width: int,
        flip_probability: float,
        stream: SeededStream,
        double_fraction: float = 0.05,
    ):
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError("flip_probability must be in [0, 1]")
        if not 0.0 <= double_fraction <= 1.0:
            raise ValueError("double_fraction must be in [0, 1]")
        self.width = width
        self.flip_probability = flip_probability
        self.double_fraction = double_fraction
        self._stream = stream
        self.events = 0
        self.bits_flipped = 0

    def tamper(self, codeword: int, cycle: int) -> int:
        if not self._stream.chance(self.flip_probability):
            return codeword
        self.events += 1
        flips = 2 if self._stream.chance(self.double_fraction) else 1
        fault = 0
        while fault.bit_count() < flips:
            fault |= 1 << self._stream.randint(0, self.width - 1)
        self.bits_flipped += fault.bit_count()
        return codeword ^ fault


class StuckAtKind(enum.Enum):
    ZERO = 0
    ONE = 1


class PermanentFault:
    """Stuck-at fault on one or more wires of a link.

    A stuck wire always presents the stuck value downstream; it corrupts
    a traversal only when the transmitted bit disagrees, which is why the
    paper's BIST uses complementary test patterns (walking ones *and*
    zeros) to expose both polarities.
    """

    __slots__ = ("width", "stuck_mask", "stuck_value", "activations")

    def __init__(self, width: int, positions: dict[int, StuckAtKind]):
        if not positions:
            raise ValueError("need at least one stuck position")
        stuck_mask = 0
        stuck_value = 0
        for pos, kind in positions.items():
            if not 0 <= pos < width:
                raise ValueError(f"stuck position {pos} outside link width")
            stuck_mask |= 1 << pos
            if kind is StuckAtKind.ONE:
                stuck_value |= 1 << pos
        self.width = width
        self.stuck_mask = stuck_mask
        self.stuck_value = stuck_value
        self.activations = 0

    @classmethod
    def single(
        cls, width: int, position: int, kind: StuckAtKind = StuckAtKind.ZERO
    ) -> "PermanentFault":
        return cls(width, {position: kind})

    def tamper(self, codeword: int, cycle: int) -> int:
        forced = (codeword & ~self.stuck_mask) | self.stuck_value
        if forced != codeword:
            self.activations += 1
        return forced

    @property
    def positions(self) -> list[int]:
        """Stuck wire indices, ascending."""
        out = []
        m = self.stuck_mask
        idx = 0
        while m:
            if m & 1:
                out.append(idx)
            m >>= 1
            idx += 1
        return out


class LinkKillFault:
    """Catastrophic wire failure: every traversal takes a double-bit hit.

    Two flips on fixed positions are always DETECTED (never corrected)
    by SECDED, and — unlike the TASP trigger — they corrupt the codeword
    *regardless* of content, so obfuscation cannot restore the link.
    This is the chaos event that forces the escalation ladder past L-Ob
    into drop/condemn territory.
    """

    __slots__ = ("width", "fault_mask", "activations")

    def __init__(self, width: int, positions: tuple[int, int] = (3, 41)):
        lo, hi = positions
        if lo == hi:
            raise ValueError("need two distinct positions")
        if not (0 <= lo < width and 0 <= hi < width):
            raise ValueError("fault positions outside link width")
        self.width = width
        self.fault_mask = (1 << lo) | (1 << hi)
        self.activations = 0

    def tamper(self, codeword: int, cycle: int) -> int:
        self.activations += 1
        return codeword ^ self.fault_mask


class GrayholeAttack:
    """Packet-drop attack on the retransmission/recovery path.

    A compromised link controller that probabilistically destroys
    traversals: each selected traversal takes a double-bit flip at
    positions drawn fresh from the attack's stream.  Against SECDED two
    flips are always DETECTED and never corrected, so every hit becomes
    a NACK and consumes a retry — at ``drop_probability < 1`` this is a
    classic gray-hole (a *fraction* of recovery traffic silently dies,
    the hardest case for per-link statistics), and at ``1.0`` it
    black-holes the link outright.  Unlike :class:`LinkKillFault` the
    flip positions vary per event, so the fault signature never repeats
    — mimicking transients and evading position-keyed detectors.

    The attacker schedules it like a trojan kill switch: ``arm()`` /
    ``disarm()`` (the scenario layer drives these from
    ``DropAttackSpec.enable_at`` / ``disable_at``).
    """

    __slots__ = ("width", "drop_probability", "_stream", "armed",
                 "traversals_seen", "events", "bits_flipped")

    def __init__(
        self,
        width: int,
        drop_probability: float,
        stream: SeededStream,
        armed: bool = False,
    ):
        if not 0.0 < drop_probability <= 1.0:
            raise ValueError("drop_probability must be in (0, 1]")
        self.width = width
        self.drop_probability = drop_probability
        self._stream = stream
        self.armed = armed
        self.traversals_seen = 0
        self.events = 0
        self.bits_flipped = 0

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def tamper(self, codeword: int, cycle: int) -> int:
        if not self.armed:
            return codeword
        self.traversals_seen += 1
        if not self._stream.chance(self.drop_probability):
            return codeword
        self.events += 1
        fault = 0
        while fault.bit_count() < 2:
            fault |= 1 << self._stream.randint(0, self.width - 1)
        self.bits_flipped += 2
        return codeword ^ fault


class CompositeTamperer:
    """Apply a sequence of tamperers in order (wire order on the link)."""

    __slots__ = ("parts",)

    def __init__(self, parts: list[LinkTamperer]):
        self.parts = list(parts)

    def tamper(self, codeword: int, cycle: int) -> int:
        for part in self.parts:
            codeword = part.tamper(codeword, cycle)
        return codeword


def random_codeword(width: int, stream: SeededStream) -> int:
    """Uniform test word for BIST random probing."""
    return stream.bits(width) & mask(width)
