"""Chaos campaign engine: scheduled faults + invariants + recovery.

A :class:`ChaosCampaign` takes a declarative :class:`CampaignSpec` — a
network configuration, a traffic schedule, a list of
:class:`repro.resilience.scenarios.ChaosEvent` fault events and a
watchdog configuration — and runs the whole resilience stack in one
loop:

* traffic is offered through a :class:`repro.core.recovery.RecoveryManager`
  so every packet has a pristine ledger copy for end-to-end resubmission;
* fault events fire on schedule (``at <= cycle`` catch-up semantics, so
  events survive the cycle jump of an epoch change);
* a :class:`repro.noc.invariants.NetworkValidator` audits conservation
  laws continuously (violations are *collected*, not raised, so a run
  always produces a report);
* the :class:`repro.resilience.watchdog.RetransWatchdog` escalation
  ladder runs as a network monitor; its drop notifications trigger
  in-place end-to-end resubmission (bounded per packet), and its
  condemnations trigger epoch recovery (freeze/drain/reroute/resubmit);
* progress is tracked independently of delivery (watchdog and recovery
  activity counts), so a campaign distinguishes "slow" from
  "deadlocked".

The outcome is a structured :class:`CampaignReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.reroute import UnroutableError
from repro.core.mitigation import MitigationConfig
from repro.core.recovery import RecoveryManager
from repro.noc.config import NoCConfig
from repro.noc.flit import Packet
from repro.noc.invariants import NetworkValidator
from repro.noc.network import Network
from repro.noc.topology import LinkKey
from repro.resilience.scenarios import ChaosEvent
from repro.resilience.watchdog import RetransWatchdog, WatchdogConfig

#: integer NetworkStats counters accumulated across epochs
_ACCUM_COUNTERS = (
    "packets_injected",
    "packets_completed",
    "flits_injected",
    "flits_ejected",
    "dropped_flits",
    "degraded_flits",
    "degraded_packets",
    "packets_resubmitted",
    "retrans_backoffs",
    "lob_escalations",
)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one chaos campaign."""

    name: str
    cfg: NoCConfig
    #: (offer_cycle, packet) pairs; offered through the recovery ledger
    traffic: Sequence[tuple[int, Packet]]
    events: Sequence[ChaosEvent] = ()
    #: build with the paper's detector + L-Ob mitigation installed
    mitigated: bool = True
    mitigation: Optional[MitigationConfig] = None
    #: None disables the watchdog (degradation is strictly opt-in)
    watchdog: Optional[WatchdogConfig] = field(
        default_factory=WatchdogConfig
    )
    #: hard cycle budget
    max_cycles: int = 6000
    #: invariant audit period (cycles)
    validate_every: int = 5
    #: end-to-end resubmissions allowed per offered packet
    resubmit_cap: int = 3
    #: no progress of any kind for this many cycles => deadlocked
    deadlock_window: int = 1000
    #: epoch-recovery parameters (see RecoveryManager.recover)
    recovery_drain_limit: int = 1500
    recovery_stall_limit: int = 300
    reconfiguration_cycles: int = 64
    seed: int = 0
    #: after a failing run, delta-debug the event list to find which
    #: injected faults minimally explain the failure (costs extra runs)
    explain_violations: bool = False
    #: campaign re-run budget for that explanation
    explain_budget: int = 32


@dataclass(frozen=True)
class CampaignReport:
    """Structured outcome of one campaign run."""

    name: str
    seed: int
    cycles: int
    epochs: int
    deadlocked: bool
    drained: bool
    watchdog_enabled: bool
    # -- delivery accounting (ledger view: aliases fold into originals)
    packets_offered: int
    packets_delivered: int
    packets_failed: int
    #: offered packets with more than one complete delivery (must be 0)
    duplicate_deliveries: int
    resubmissions: int
    packets_dropped: int
    flits_degraded: int
    # -- ladder activity
    backoffs: int
    obfuscations_forced: int
    condemned_links: tuple[LinkKey, ...]
    recovery_cycles: tuple[int, ...]
    escalation_stages: tuple[str, ...]
    first_fault_cycle: Optional[int]
    first_escalation_cycle: Optional[int]
    # -- ground truth + audit
    faults_injected: int
    corrupted_traversals: int
    invariant_checks: int
    violations: tuple[str, ...]
    #: labels of the minimal injected-event subset that still produces
    #: this failure (empty unless explain_violations found one)
    minimal_events: tuple[str, ...] = ()
    #: deterministic metrics-registry snapshot of the campaign counters
    #: (:func:`repro.obs.collectors.campaign_metrics`); counter-valued
    #: only, so identical runs embed byte-identical metrics
    metrics: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Did this run exhibit a failure worth explaining?"""
        return self.deadlocked or bool(self.violations)

    @property
    def delivered_all(self) -> bool:
        return self.packets_failed == 0

    @property
    def time_to_detect(self) -> Optional[int]:
        """Cycles from first fault onset to first ladder action."""
        if self.first_fault_cycle is None or self.first_escalation_cycle is None:
            return None
        return self.first_escalation_cycle - self.first_fault_cycle

    @property
    def time_to_recover(self) -> Optional[int]:
        """Cycles from first fault onset to the last epoch change."""
        if self.first_fault_cycle is None or not self.recovery_cycles:
            return None
        return self.recovery_cycles[-1] - self.first_fault_cycle

    def summary(self) -> str:
        lines = [
            f"campaign {self.name!r} (seed {self.seed}): "
            f"{self.cycles} cycles, {self.epochs} epoch(s), "
            f"{'DEADLOCKED' if self.deadlocked else 'live'}",
            f"  delivery: {self.packets_delivered}/{self.packets_offered} "
            f"delivered, {self.packets_failed} failed, "
            f"{self.resubmissions} resubmitted end-to-end",
            f"  ladder: {self.backoffs} backoffs, "
            f"{self.obfuscations_forced} obfuscation escalations, "
            f"{self.packets_dropped} packet drops "
            f"({self.flits_degraded} flits), "
            f"{len(self.condemned_links)} link(s) condemned",
            f"  faults: {self.faults_injected} injected, "
            f"{self.corrupted_traversals} corrupted traversals",
            f"  audit: {self.invariant_checks} invariant checks, "
            f"{len(self.violations)} violations",
        ]
        if self.time_to_detect is not None:
            lines.append(
                f"  time-to-detect: {self.time_to_detect} cycles"
                + (
                    f", time-to-recover: {self.time_to_recover} cycles"
                    if self.time_to_recover is not None
                    else ""
                )
            )
        if self.escalation_stages:
            lines.append(
                "  escalation: " + " -> ".join(self.escalation_stages)
            )
        if self.minimal_events:
            lines.append(
                "  minimal cause: " + " + ".join(self.minimal_events)
            )
        return "\n".join(lines)


def run_campaign(spec: CampaignSpec) -> CampaignReport:
    """Execute one campaign: ``ChaosCampaign(spec).run()``.

    A module-level entry point, so supervised runners can hand a
    ``(run_campaign, (spec,))`` pair to a worker process without
    wrapping the campaign object themselves.

    With ``spec.explain_violations`` set, a failing run is followed by
    :func:`minimal_explaining_events` and the report carries the
    minimal fault subset as ``minimal_events``.
    """
    report = ChaosCampaign(spec).run()
    if spec.explain_violations and report.failed and spec.events:
        import dataclasses

        report = dataclasses.replace(
            report,
            minimal_events=minimal_explaining_events(
                spec, report, max_runs=spec.explain_budget
            ),
        )
    return report


def minimal_explaining_events(
    spec: CampaignSpec,
    report: CampaignReport,
    *,
    max_runs: int = 32,
) -> tuple[str, ...]:
    """Labels of a 1-minimal event subset that still reproduces the
    campaign's failure mode.

    Delta-debugs ``spec.events`` by re-running the campaign on
    candidate subsets (each event deep-copied, so the stateful fault
    models start fresh) and keeping removals under which the run still
    *fails the same way*: an invariant-violating run must keep
    violating, a deadlocked run must keep deadlocking.  At most
    ``max_runs`` re-runs are spent; if the budget runs dry the
    smallest subset found so far is returned (still failing, possibly
    not minimal).  Returns ``()`` when the original run didn't fail.
    """
    import copy
    import dataclasses as dc

    from repro.sim.shrink import greedy_min_subset

    def failed_same_way(candidate: CampaignReport) -> bool:
        if report.violations:
            return bool(candidate.violations)
        return candidate.deadlocked

    if not report.failed:
        return ()

    runs = 0

    def still_fails(events: list) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False  # budget dry: accept no further removals
        runs += 1
        candidate = dc.replace(
            spec,
            events=tuple(copy.deepcopy(e) for e in events),
            explain_violations=False,
        )
        return failed_same_way(ChaosCampaign(candidate).run())

    kept = greedy_min_subset(list(spec.events), still_fails)
    return tuple(event.label() for event in kept)


class ChaosCampaign:
    """Executes one :class:`CampaignSpec`."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec

    # -- wiring --------------------------------------------------------------
    def _build_network(self) -> Network:
        from repro.sim import DefenseSpec, Scenario, engine

        spec = self.spec
        return engine.build(
            Scenario(
                name=spec.name,
                cfg=spec.cfg,
                defense=DefenseSpec(
                    mitigated=spec.mitigated, mitigation=spec.mitigation
                ),
                seed=spec.seed,
            )
        )

    # -- main loop -----------------------------------------------------------
    def run(self) -> CampaignReport:
        spec = self.spec
        net = self._build_network()
        manager = RecoveryManager(net)
        validator = NetworkValidator(net)
        watchdog: Optional[RetransWatchdog] = None
        if spec.watchdog is not None:
            watchdog = RetransWatchdog(spec.watchdog).attach(net)

        for event in spec.events:
            event.prepare(net)

        traffic = sorted(spec.traffic, key=lambda item: item[0])
        next_offer = 0
        started: set[int] = set()
        stopped: set[int] = set()
        # resubmission bookkeeping: alias -> ledger original, and the
        # latest live attempt per original (stale drop notices ignored)
        family: dict[int, int] = {}
        latest: dict[int, int] = {}
        resubmit_count: dict[int, int] = {}

        accum = {name: 0 for name in _ACCUM_COUNTERS}
        accum_corrupted = 0
        checks_done = 0
        violations: list[str] = []
        condemned_all: list[LinkKey] = []
        recovery_cycles: list[int] = []
        epochs = 1
        deadlocked = False
        last_progress_cycle = net.cycle
        progress_sig: tuple = ()

        horizon = max(
            [offer for offer, _ in traffic]
            + [e.end or e.at for e in spec.events]
            + [0]
        )
        end_cycle = net.cycle + spec.max_cycles

        while net.cycle < end_cycle:
            cycle = net.cycle

            # offer due traffic through the ledger
            while next_offer < len(traffic) and traffic[next_offer][0] <= cycle:
                manager.offer(traffic[next_offer][1])
                next_offer += 1

            # fire due fault events (catch-up across epoch jumps)
            for idx, event in enumerate(spec.events):
                if idx not in started and event.at <= cycle:
                    event.start(net, cycle)
                    started.add(idx)
                end = event.end
                if (
                    idx in started
                    and idx not in stopped
                    and end is not None
                    and end <= cycle
                ):
                    event.stop(net, cycle)
                    stopped.add(idx)

            net.step()

            if spec.validate_every and cycle % spec.validate_every == 0:
                validator.check(raise_on_violation=False)

            if watchdog is not None:
                # drop-with-notify -> bounded end-to-end resubmission
                for drop in watchdog.take_dropped():
                    original = family.get(drop.pkt_id, drop.pkt_id)
                    if not manager.has(original):
                        continue
                    if drop.pkt_id != latest.get(original, original):
                        continue  # stale attempt
                    if resubmit_count.get(original, 0) >= spec.resubmit_cap:
                        continue  # give up: stays on the failed list
                    alias = manager.resubmit(original)
                    family[alias] = original
                    latest[original] = alias
                    resubmit_count[original] = (
                        resubmit_count.get(original, 0) + 1
                    )

                # condemnation -> epoch recovery
                freshly_condemned = watchdog.take_condemned()
                if freshly_condemned:
                    condemned_all.extend(
                        k for k in freshly_condemned
                        if k not in condemned_all
                    )
                    old = net
                    try:
                        net = manager.recover(
                            condemned_all,
                            drain_limit=spec.recovery_drain_limit,
                            stall_limit=spec.recovery_stall_limit,
                            reconfiguration_cycles=(
                                spec.reconfiguration_cycles
                            ),
                        )
                    except UnroutableError:
                        # cannot reroute around this set; carry on in
                        # the degraded epoch
                        net = old
                    else:
                        epochs += 1
                        recovery_cycles.append(net.cycle)
                        for name in _ACCUM_COUNTERS:
                            accum[name] += getattr(old.stats, name)
                        accum_corrupted += sum(
                            link.corrupted_traversals
                            for link in old.links.values()
                        )
                        violations.extend(validator.report.violations)
                        checks_done += validator.report.checks
                        validator = NetworkValidator(net)
                        watchdog.attach(net)
                        # the new epoch restarts every undelivered
                        # packet under its original id: reset the
                        # attempt tracking and flush drop notices from
                        # the drained epoch (drop-only mode keeps
                        # purging condemned links during the drain;
                        # resubmitting those now-restarted packets
                        # again would deliver them twice)
                        watchdog.take_dropped()
                        latest.clear()
                        last_progress_cycle = net.cycle

            # progress = deliveries, drops, or ladder/recovery activity
            sig = (
                net.stats.flits_ejected,
                net.stats.dropped_flits,
                epochs,
                watchdog.activity if watchdog is not None else 0,
            )
            if sig != progress_sig:
                progress_sig = sig
                last_progress_cycle = net.cycle
            elif net.cycle - last_progress_cycle > spec.deadlock_window:
                deadlocked = True
                break

            # early exit once the schedule is exhausted and all is quiet
            if (
                next_offer >= len(traffic)
                and cycle > horizon
                and net.drained
                and not manager.undelivered()
            ):
                break

        validator.check(raise_on_violation=False)
        violations.extend(validator.report.violations)
        checks_done += validator.report.checks
        undelivered = manager.undelivered()
        epoch_resubmissions = sum(
            r.packets_resubmitted for r in manager.reports
        )

        report = CampaignReport(
            name=spec.name,
            seed=spec.seed,
            cycles=net.cycle,
            epochs=epochs,
            deadlocked=deadlocked,
            drained=net.drained,
            watchdog_enabled=watchdog is not None,
            packets_offered=manager.offered,
            packets_delivered=manager.delivered,
            packets_failed=len(undelivered),
            duplicate_deliveries=manager.duplicate_deliveries(),
            resubmissions=accum["packets_resubmitted"]
            + net.stats.packets_resubmitted
            + epoch_resubmissions,
            packets_dropped=(
                watchdog.packets_dropped if watchdog is not None else 0
            ),
            flits_degraded=accum["degraded_flits"]
            + net.stats.degraded_flits,
            backoffs=(
                watchdog.backoffs_applied if watchdog is not None else 0
            ),
            obfuscations_forced=(
                watchdog.obfuscations_forced if watchdog is not None else 0
            ),
            condemned_links=tuple(condemned_all),
            recovery_cycles=tuple(recovery_cycles),
            escalation_stages=(
                watchdog.stages_taken() if watchdog is not None else ()
            ),
            first_fault_cycle=(
                min(e.at for e in spec.events) if spec.events else None
            ),
            first_escalation_cycle=(
                watchdog.first_event_cycle if watchdog is not None else None
            ),
            faults_injected=sum(
                e.faults_injected() for e in spec.events
            ),
            corrupted_traversals=accum_corrupted
            + sum(link.corrupted_traversals for link in net.links.values()),
            invariant_checks=checks_done,
            violations=tuple(violations),
        )
        import dataclasses

        from repro.obs.collectors import campaign_metrics

        return dataclasses.replace(
            report, metrics=campaign_metrics(report)
        )
