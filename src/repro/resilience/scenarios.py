"""Declarative chaos scenarios: seeded schedules of fault events.

A scenario is a list of :class:`ChaosEvent` objects plus a traffic
schedule.  Events are plain data (link, onset cycle, duration, fault
parameters); the campaign engine calls :meth:`ChaosEvent.prepare` once
at build time and :meth:`start`/:meth:`stop` when the onset/end cycles
arrive, so the same scenario replays identically under one seed.

Fault vocabulary (composable — several events may share a link):

* :class:`TransientBurst` — a window of elevated soft-error rate;
* :class:`StuckAtOnset` — wires fail stuck-at mid-run and stay failed;
* :class:`LinkKill` — catastrophic failure: every traversal takes an
  uncorrectable double-bit hit that obfuscation cannot dodge;
* :class:`RouterStall` — a router stops launching on its output links
  for a window (clock-domain brownout); nothing in flight is lost;
* :class:`CreditFreeze` — credit returns on one link stall for a
  window (delayed, never lost);
* :class:`TrojanActivation` — a TASP instance implanted dormant at
  build time asserts its kill switch mid-run (the paper's §III attack,
  with the activation delay attackers use to evade bring-up testing).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig, TaspTrojan
from repro.ecc import SECDED_72_64
from repro.faults.models import (
    LinkKillFault,
    PermanentFault,
    StuckAtKind,
    TransientFaultModel,
)
from repro.noc.config import NoCConfig
from repro.noc.flit import Packet, layout_for
from repro.noc.network import Network
from repro.noc.topology import Direction, LinkKey, all_links
from repro.util.rng import SeededStream

#: link width every fault model operates on
CODEWORD_BITS = SECDED_72_64.codeword_bits


class ChaosEvent:
    """Base scheduled fault event.

    ``prepare`` runs once when the campaign builds its network (dormant
    hardware is implanted here); ``start`` fires at ``self.at`` and
    ``stop`` at ``self.end`` (when not ``None``).  Tamperer objects are
    kept by identity so epoch recovery — which carries tamperers to the
    new network — does not detach them from their events.
    """

    at: int = 0

    @property
    def end(self) -> Optional[int]:
        return None

    def prepare(self, network: Network) -> None:
        pass

    def start(self, network: Network, cycle: int) -> None:
        pass

    def stop(self, network: Network, cycle: int) -> None:
        pass

    def faults_injected(self) -> int:
        """Ground-truth fault count this event has caused so far."""
        return 0

    def label(self) -> str:
        return type(self).__name__


@dataclass
class TransientBurst(ChaosEvent):
    """Elevated soft-error rate on one link for a window."""

    link: LinkKey = (0, Direction.EAST)
    at: int = 0
    duration: int = 100
    flip_probability: float = 0.02
    double_fraction: float = 0.25
    seed: int = 0
    _model: Optional[TransientFaultModel] = field(default=None, repr=False)

    @property
    def end(self) -> Optional[int]:
        return self.at + self.duration

    def start(self, network: Network, cycle: int) -> None:
        self._model = TransientFaultModel(
            CODEWORD_BITS,
            self.flip_probability,
            SeededStream(self.seed, "burst", self.link, self.at),
            double_fraction=self.double_fraction,
        )
        network.attach_tamperer(self.link, self._model)

    def stop(self, network: Network, cycle: int) -> None:
        if self._model is None:
            return
        tamperers = network.links[self.link].tamperers
        if self._model in tamperers:
            tamperers.remove(self._model)

    def faults_injected(self) -> int:
        return self._model.events if self._model is not None else 0

    def label(self) -> str:
        return f"burst@{self.link[0]}-{self.link[1].name}"


@dataclass
class StuckAtOnset(ChaosEvent):
    """Wires fail stuck-at mid-run; the damage is permanent."""

    link: LinkKey = (0, Direction.EAST)
    at: int = 0
    positions: tuple[int, ...] = (5,)
    kind: StuckAtKind = StuckAtKind.ZERO
    _model: Optional[PermanentFault] = field(default=None, repr=False)

    def start(self, network: Network, cycle: int) -> None:
        self._model = PermanentFault(
            CODEWORD_BITS, {p: self.kind for p in self.positions}
        )
        network.attach_tamperer(self.link, self._model)

    def faults_injected(self) -> int:
        return self._model.activations if self._model is not None else 0

    def label(self) -> str:
        return f"stuck@{self.link[0]}-{self.link[1].name}"


@dataclass
class LinkKill(ChaosEvent):
    """Catastrophic mid-flight link failure (always-uncorrectable)."""

    link: LinkKey = (0, Direction.EAST)
    at: int = 0
    _model: Optional[LinkKillFault] = field(default=None, repr=False)

    def start(self, network: Network, cycle: int) -> None:
        self._model = LinkKillFault(CODEWORD_BITS)
        network.attach_tamperer(self.link, self._model)

    def faults_injected(self) -> int:
        return self._model.activations if self._model is not None else 0

    def label(self) -> str:
        return f"kill@{self.link[0]}-{self.link[1].name}"


@dataclass
class RouterStall(ChaosEvent):
    """One router stops launching on its outputs for a window."""

    router: int = 0
    at: int = 0
    duration: int = 50

    @property
    def end(self) -> Optional[int]:
        return self.at + self.duration

    def start(self, network: Network, cycle: int) -> None:
        for out in network.routers[self.router].outputs.values():
            out.link.paused = True

    def stop(self, network: Network, cycle: int) -> None:
        # After an epoch swap the new links start unpaused; unpausing
        # again is harmless.
        if self.router < len(network.routers):
            for out in network.routers[self.router].outputs.values():
                out.link.paused = False

    def label(self) -> str:
        return f"stall@{self.router}"


@dataclass
class CreditFreeze(ChaosEvent):
    """Credit returns on one link stall (delayed, never lost)."""

    link: LinkKey = (0, Direction.EAST)
    at: int = 0
    duration: int = 50

    @property
    def end(self) -> Optional[int]:
        return self.at + self.duration

    def start(self, network: Network, cycle: int) -> None:
        network.output_port_of(self.link).credits.frozen = True

    def stop(self, network: Network, cycle: int) -> None:
        if self.link in network.links:
            network.output_port_of(self.link).credits.frozen = False

    def label(self) -> str:
        return f"freeze@{self.link[0]}-{self.link[1].name}"


@dataclass
class TrojanActivation(ChaosEvent):
    """A dormant TASP instance asserts its kill switch at ``at``."""

    link: LinkKey = (0, Direction.EAST)
    at: int = 0
    target: TargetSpec = field(default_factory=lambda: TargetSpec.for_dest(15))
    duration: Optional[int] = None
    config: TaspConfig = field(default_factory=TaspConfig)
    trojan: Optional[TaspTrojan] = field(default=None, repr=False)

    @property
    def end(self) -> Optional[int]:
        return None if self.duration is None else self.at + self.duration

    def prepare(self, network: Network) -> None:
        # Implanted at design time, dormant: logic testing with the kill
        # switch deasserted can never expose it (paper §III).
        self.trojan = TaspTrojan(
            self.target, self.config, layout=layout_for(network.cfg)
        )
        network.attach_tamperer(self.link, self.trojan)

    def start(self, network: Network, cycle: int) -> None:
        assert self.trojan is not None, "prepare() not called"
        self.trojan.enable()

    def stop(self, network: Network, cycle: int) -> None:
        if self.trojan is not None:
            self.trojan.disable()

    def faults_injected(self) -> int:
        return self.trojan.faults_injected if self.trojan is not None else 0

    def label(self) -> str:
        return f"tasp@{self.link[0]}-{self.link[1].name}"


# -- traffic schedules -----------------------------------------------------

def targeted_stream(
    cfg: NoCConfig,
    src_core: int,
    dst_core: int,
    count: int,
    start: int = 0,
    interval: int = 6,
    payload_flits: int = 3,
    base_id: int = 0,
    seed: int = 0,
) -> list[tuple[int, Packet]]:
    """A steady victim flow from one core to another."""
    stream = SeededStream(seed, "targeted", src_core, dst_core)
    schedule = []
    for i in range(count):
        packet = Packet(
            pkt_id=base_id + i,
            src_core=src_core,
            dst_core=dst_core,
            payload=[stream.bits(60) for _ in range(payload_flits)],
        )
        schedule.append((start + i * interval, packet))
    return schedule


def uniform_traffic(
    cfg: NoCConfig,
    seed: int,
    count: int,
    start: int = 0,
    interval: int = 3,
    payload_flits: int = 3,
    base_id: int = 10_000,
) -> list[tuple[int, Packet]]:
    """Uniform-random background pairs (src != dst)."""
    stream = SeededStream(seed, "uniform-traffic")
    schedule = []
    for i in range(count):
        src = stream.randint(0, cfg.num_cores - 1)
        dst = stream.randint(0, cfg.num_cores - 1)
        while dst == src:
            dst = stream.randint(0, cfg.num_cores - 1)
        packet = Packet(
            pkt_id=base_id + i,
            src_core=src,
            dst_core=dst,
            payload=[stream.bits(60) for _ in range(payload_flits)],
        )
        schedule.append((start + i * interval, packet))
    return schedule


# -- canned scenarios ------------------------------------------------------

def random_events(
    cfg: NoCConfig,
    seed: int,
    *,
    horizon: int = 400,
    max_events: int = 4,
) -> list[ChaosEvent]:
    """A seeded composition of transient, stuck-at and trojan faults on
    a couple of links — the fuzz-campaign generator."""
    stream = SeededStream(seed, "random-scenario")
    links = all_links(cfg)
    stream.shuffle(links)
    victims = links[: max(1, min(2, len(links)))]
    events: list[ChaosEvent] = []
    count = stream.randint(2, max_events)
    for i in range(count):
        link = victims[stream.randint(0, len(victims) - 1)]
        onset = stream.randint(10, horizon // 2)
        kind = stream.weighted_choice(
            [0, 1, 2, 3], [0.35, 0.3, 0.25, 0.1]
        )
        if kind == 0:
            events.append(
                TransientBurst(
                    link=link,
                    at=onset,
                    duration=stream.randint(40, horizon // 2),
                    flip_probability=0.01 + 0.04 * stream.random(),
                    double_fraction=0.2 + 0.3 * stream.random(),
                    seed=seed * 1000 + i,
                )
            )
        elif kind == 1:
            events.append(
                StuckAtOnset(
                    link=link,
                    at=onset,
                    positions=(stream.randint(0, CODEWORD_BITS - 1),),
                    kind=(
                        StuckAtKind.ONE
                        if stream.chance(0.5)
                        else StuckAtKind.ZERO
                    ),
                )
            )
        elif kind == 2:
            dst_router = stream.randint(0, cfg.num_routers - 1)
            events.append(
                TrojanActivation(
                    link=link,
                    at=onset,
                    target=TargetSpec.for_dest(dst_router),
                    # a fifth of trojans never deassert their kill switch
                    duration=(
                        None
                        if stream.chance(0.2)
                        else stream.randint(60, horizon // 2)
                    ),
                    config=dataclasses.replace(TaspConfig(), seed=seed + i),
                )
            )
        else:
            events.append(LinkKill(link=link, at=onset))
    events.sort(key=lambda e: e.at)
    return events
