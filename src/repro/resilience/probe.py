"""BIST-style probe-flit prober for quarantined links.

:mod:`repro.faults.bist` answers "is a wire stuck?" with raw test
patterns; a *target-activated* trojan (TASP) sleeps straight through
such a scan because its comparators inspect decoded header fields, not
wire toggles.  :class:`LinkProber` closes that gap: it drives
**traffic-shaped** probes — realistically encoded head-flit headers
sweeping every src/dst id the mesh can name, plus seeded random
payload words — through the link's tamper chain, each both in the
clear and through L-Ob, and classifies the link from the difference:

* every probe arrives intact → :attr:`ProbeVerdict.CLEAN`;
* plain probes fault but their obfuscated twins pass →
  :attr:`ProbeVerdict.INFECTED` (``content-triggered``: the scrambled
  wire image no longer matches a comparator — the trojan's own evasion
  trick turned into its fingerprint);
* every probe faults in both forms → :attr:`ProbeVerdict.INFECTED`
  (``stuck``: a permanent fault or an always-on gray-hole);
* anything in between → :attr:`ProbeVerdict.FLAKY` (transient storm,
  or a trojan the probe set only grazes).

Probing is out-of-band: words go through :meth:`Link.apply_tamper`
directly, never onto the wire's in-flight queue, so a sealed link can
be exercised while disabled.  The prober carries its *own*
:class:`~repro.core.lob.LObCodec` — it is both sender and checker, so
it needs no link secret and works on networks built without L-Ob.

Blind spots are deliberate and safe: a trojan keyed to a full 32-bit
memory address will not match any probe, scan CLEAN and be reinstated
— whereupon real traffic re-triggers it, the watchdog re-condemns it,
and the coordinator's flap damping (see
:mod:`repro.resilience.containment`) converges the link to permanent
condemnation within ``max_flaps`` rounds.  The probe does not have to
be complete for the closed loop to be sound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.lob import Granularity, LObCodec, ObMethod
from repro.ecc import SECDED_72_64, DecodeStatus, Secded
from repro.noc.config import NoCConfig
from repro.noc.flit import FlitType, layout_for, pack_header
from repro.noc.link import Link
from repro.util.bits import mask
from repro.util.rng import SeededStream

#: pkt-id band probes carry; never enters the network, only the wire
PROBE_PKT_ID_BASE = 0x3F_0000


class ProbeVerdict(enum.Enum):
    CLEAN = "clean"
    INFECTED = "infected"
    FLAKY = "flaky"


@dataclass(frozen=True)
class ProbeTrial:
    """Outcome of one probe trial on one link."""

    cycle: int
    trial_index: int
    verdict: ProbeVerdict
    plain_sent: int = 0
    plain_failed: int = 0
    ob_sent: int = 0
    ob_failed: int = 0
    detail: str = ""


@dataclass(frozen=True)
class ProbeConfig:
    """Shape of one probe trial (deterministic given ``seed``)."""

    #: sweep every router id through the src and dst header fields —
    #: guarantees any src/dst/vc-targeted comparator sees its trigger
    sweep_ids: bool = True
    #: seeded random head-flit headers + raw payload words per trial
    random_probes: int = 8
    #: send each probe word a second time through L-Ob (invert/shuffle)
    obfuscated: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.random_probes < 0:
            raise ValueError("random_probes must be >= 0")
        if not self.sweep_ids and self.random_probes == 0:
            raise ValueError("a trial needs at least one probe source")


class LinkProber:
    """Drive traffic-shaped probe words through one network's links."""

    def __init__(
        self,
        cfg: NoCConfig,
        config: ProbeConfig | None = None,
        codec: Secded = SECDED_72_64,
    ):
        self.cfg = cfg
        self.config = config or ProbeConfig()
        self.codec = codec
        self.layout = layout_for(cfg)
        #: the prober's private obfuscation codec (sender == checker,
        #: so no link secret is needed)
        self.lob = LObCodec(flit_bits=64, seed=self.config.seed)
        self.trials_run = 0
        self.probes_sent = 0

    # -- probe word generation ---------------------------------------------
    def _probe_words(self, link: Link, trial_index: int) -> list[int]:
        """The trial's wire images (pre-ECC 64-bit data words)."""
        cfg = self.cfg
        stream = SeededStream(
            self.config.seed,
            "probe",
            link.src_router,
            link.direction.name,
            trial_index,
        )
        words: list[int] = []
        probe_id = 0
        if self.config.sweep_ids:
            # Realistic flows crossing this link: the dst sweep models
            # every destination routed through it, the src sweep every
            # origin feeding it.  Together they trip any comparator
            # keyed on router ids or VC classes.
            for dst in range(cfg.num_routers):
                words.append(
                    pack_header(
                        link.src_router,
                        dst,
                        dst % cfg.num_vcs,
                        stream.bits(32),
                        FlitType.HEAD,
                        PROBE_PKT_ID_BASE + probe_id,
                        self.layout,
                    )
                )
                probe_id += 1
            for src in range(cfg.num_routers):
                words.append(
                    pack_header(
                        src,
                        link.dst_router,
                        src % cfg.num_vcs,
                        stream.bits(32),
                        FlitType.HEAD,
                        PROBE_PKT_ID_BASE + probe_id,
                        self.layout,
                    )
                )
                probe_id += 1
        for _ in range(self.config.random_probes):
            if stream.chance(0.5):
                words.append(
                    pack_header(
                        stream.randint(0, cfg.num_routers - 1),
                        stream.randint(0, cfg.num_routers - 1),
                        stream.randint(0, cfg.num_vcs - 1),
                        stream.bits(32),
                        FlitType.HEAD,
                        PROBE_PKT_ID_BASE + probe_id,
                        self.layout,
                    )
                )
            else:
                # raw payload word: body flits cross the link too
                words.append(stream.bits(64))
            probe_id += 1
        return words

    # -- the trial -----------------------------------------------------------
    def _drive(self, link: Link, word: int, cycle: int) -> bool:
        """Send one data word through the tamper chain; True = failed
        (an uncorrectable fault or a miscorrection on arrival)."""
        self.probes_sent += 1
        codeword = self.codec.encode(word & mask(64))
        received = link.apply_tamper(codeword, cycle)
        result = self.codec.decode(received)
        if result.status is DecodeStatus.DETECTED:
            return True
        return result.data != (word & mask(64))

    def trial(self, link: Link, cycle: int, trial_index: int) -> ProbeTrial:
        """One full probe trial against ``link`` at ``cycle``.

        Deterministic in ``(seed, link, trial_index)`` — the schedule's
        cycle numbers never touch the probe content, so sweep and event
        engines produce identical verdicts.
        """
        self.trials_run += 1
        words = self._probe_words(link, trial_index)
        plain_failed = 0
        ob_sent = 0
        ob_failed = 0
        for index, word in enumerate(words):
            if self._drive(link, word, cycle):
                plain_failed += 1
            if self.config.obfuscated:
                method = (
                    ObMethod.INVERT if index % 2 == 0 else ObMethod.SHUFFLE
                )
                ob_word = self.lob.apply(word & mask(64), method,
                                         Granularity.FULL)
                ob_sent += 1
                if self._drive(link, ob_word, cycle):
                    ob_failed += 1
        plain_sent = len(words)
        if plain_failed == 0 and ob_failed == 0:
            verdict, detail = ProbeVerdict.CLEAN, ""
        elif ob_failed == 0:
            verdict, detail = ProbeVerdict.INFECTED, "content-triggered"
        elif plain_failed == plain_sent and ob_failed == ob_sent:
            verdict, detail = ProbeVerdict.INFECTED, "stuck"
        else:
            verdict, detail = ProbeVerdict.FLAKY, "sporadic"
        return ProbeTrial(
            cycle=cycle,
            trial_index=trial_index,
            verdict=verdict,
            plain_sent=plain_sent,
            plain_failed=plain_failed,
            ob_sent=ob_sent,
            ob_failed=ob_failed,
            detail=detail,
        )
