"""Network-level containment coordinator for coordinated attacks.

The per-link :class:`~repro.resilience.watchdog.RetransWatchdog` ladder
is locally sound but globally naive: under N simultaneous attackers,
N independent escalations can force many drops in one cycle (a burst of
end-to-end resubmissions that is itself a flood), and N independent
condemnations can remove enough links to partition the mesh — turning
the mitigation into the denial of service it was meant to stop.

:class:`ContainmentCoordinator` owns the watchdog's escalations and
makes them globally safe:

* **action budget** — at most ``max_actions_per_cycle`` forced-L-Ob or
  drop actions fire per cycle across the whole network (via the
  watchdog's ``action_gate``); a link denied an action retries under
  exponential backoff with seeded jitter, so N synchronized ladders
  desynchronize instead of thundering together.
* **deadlock-free reroute** — a condemned link is routed *around* using
  a turn-model (:mod:`repro.noc.adaptive`) whose legal turns contain
  the base routing's (xy ⊂ west-first), so switching mid-flight adds no
  turn cycles.  Admission is guarded by
  :func:`~repro.noc.adaptive.turn_model_connected`: a condemnation
  whose avoid-set would disconnect any src/dst pair is **refused** and
  the link falls back to the watchdog's drop-only mode instead
  (drop-with-notify keeps end-to-end delivery alive).
* **invariant-safe draining** — a rerouted link is not disabled while
  it still holds protocol state; the watchdog's drop-only ladder clears
  its pinned entries, and only once the retransmission buffer is empty
  and the wire is idle is the link **sealed** (``disable_link`` then
  touches nothing in flight).
* **region quarantine** — when ``quarantine_threshold`` condemnations
  correlate within ``quarantine_window`` cycles *and* their bounding
  rectangle is small enough to be a localized attack
  (``quarantine_max_fraction``), the coordinator escalates to
  quarantining the rectangle preemptively: every link with
  *both* endpoints inside the rectangle joins the avoid-set at once
  (boundary-crossing links survive, so the rectangle never isolates the
  outside), subject to the same connectivity admission; when the full
  rectangle would partition — any westbound or same-column inner link
  is a sole route under west-first — the detour-capable eastbound
  subset is quarantined instead.

The coordinator is a pure observer until the watchdog escalates: with
no watchdog attached — or an attached watchdog that never condemns —
it changes nothing about the simulation, which is what keeps the
single-trojan paper figures byte-identical with containment enabled.

**Probation** closes the loop in the other direction.  A TASP trojan
is target-activated: when its trigger stream ends the hardware is a
perfectly good link again, yet without recovery every condemnation is
forever and the mesh stays degraded after the attack stops.  With a
:class:`ProbationConfig`, contained links (sealed or drop-only) are
periodically exercised by a :class:`~repro.resilience.probe.LinkProber`
on a seeded schedule; ``required_clean`` *consecutive* CLEAN trials
reinstate the link — the seal is undone in reverse order of how it was
applied (re-enable hardware, shrink the avoid-set, restore the base
routing once the avoid-set empties, restart the watchdog ladder from
rung 0).  Shrinking the avoid-set can only add legal routes, so the
``turn_model_connected`` invariant that admitted the condemnation is
preserved by construction (and re-checked anyway).  A link that gets
re-condemned after reinstatement is *flapping* — a toggling trojan
farming the recovery path — so each flap multiplies its probe delays
by ``flap_multiplier`` (exponential damping) and ``max_flaps`` flaps,
or exhausting the lifetime ``max_trials`` probe budget, condemns it
permanently.  False positives from an early detector are therefore
safe: a healthy link that lands in containment probes clean and is
back in service within ``start_after + required_clean·probe_period``
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.adaptive import avoid_routing, turn_model_connected
from repro.noc.network import Network
from repro.noc.topology import (
    Direction,
    LinkKey,
    link_endpoints,
    neighbor,
)
from repro.resilience.probe import LinkProber, ProbeConfig, ProbeVerdict
from repro.resilience.watchdog import (
    EscalationStage,
    PartitionRisk,
    RetransWatchdog,
)
from repro.util.rng import SeededStream

#: base routings the coordinator may reroute, and the turn model whose
#: legal turns are a superset of theirs (mid-flight switch adds no turn
#: cycles).  yx and table routings have no such safe superset here, so
#: containment on those networks is drop-only.  On a torus the safe
#: model is "torus-arc" instead (resolved in :meth:`attach`): mesh turn
#: models assume planar geometry, while clear-arc routing degenerates
#: to the torus's own wrap-aware xy when the avoid-set is empty.
SAFE_REROUTE_MODELS = {
    "xy": "west-first",
    "west-first": "west-first",
    "odd-even": "odd-even",
}

#: every explicitly configurable reroute model
REROUTE_MODELS = (*SAFE_REROUTE_MODELS.values(), "torus-arc")


def neighborhood_links(cfg, key: LinkKey) -> frozenset[LinkKey]:
    """The 1-hop quarantine neighborhood of a link: every out-link of
    its two endpoint routers (the link itself included).  Defined over
    the topology graph, so wrap and express links participate."""
    src, dst = link_endpoints(cfg, key)
    region = set()
    for router in (src, dst):
        for direction in Direction:
            if neighbor(cfg, router, direction) is not None:
                region.add((router, direction))
    return frozenset(region)


@dataclass(frozen=True)
class ContainmentConfig:
    """Coordinator policy knobs (all deterministic given ``seed``)."""

    #: global cap on forced-L-Ob/drop actions per cycle
    max_actions_per_cycle: int = 2
    #: base retry delay (cycles) after a budget denial
    retry_base: int = 8
    #: retry delay ceiling
    retry_cap: int = 256
    #: jitter fraction on retry delays (0 = lockstep, 0.5 = up to +50%)
    jitter: float = 0.5
    #: seed for the jitter streams
    seed: int = 0
    #: turn model used to route around condemned links; "auto" derives
    #: it from the network's base routing (SAFE_REROUTE_MODELS) and
    #: disables rerouting when no deadlock-safe model exists
    reroute_model: str = "auto"
    #: escalate correlated condemnations into a region quarantine
    quarantine: bool = True
    #: condemnations within ``quarantine_window`` that trigger it
    quarantine_threshold: int = 3
    #: correlation window in cycles
    quarantine_window: int = 2000
    #: largest rectangle worth quarantining, as a fraction of the mesh;
    #: correlated condemnations whose bounding rectangle exceeds this
    #: are not a *localized* attack, and walling off most of the mesh
    #: would cost more benign throughput than the per-link containment
    #: already in force
    quarantine_max_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_actions_per_cycle < 1:
            raise ValueError("max_actions_per_cycle must be at least 1")
        if self.retry_base < 1 or self.retry_cap < self.retry_base:
            raise ValueError("retry delays must satisfy 1 <= base <= cap")
        if not 0.0 <= self.jitter <= 4.0:
            raise ValueError("jitter fraction out of range")
        if self.reroute_model not in ("auto", "none", *REROUTE_MODELS):
            raise ValueError(f"unknown reroute model {self.reroute_model!r}")
        if self.quarantine_threshold < 2:
            raise ValueError("quarantine needs at least 2 correlated links")
        if self.quarantine_window < 1:
            raise ValueError("quarantine_window must be positive")
        if not 0.0 < self.quarantine_max_fraction <= 1.0:
            raise ValueError("quarantine_max_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ProbationConfig:
    """Recovery policy: when and how contained links earn reinstatement.

    All schedules are deterministic given ``seed``; the probe content
    is independent of the cycle numbers, so sweep and event engines
    reach byte-identical verdicts.
    """

    #: quiet period (cycles) between containment and the first probe —
    #: long enough for a burst-triggered trojan's trigger tail to pass
    start_after: int = 400
    #: cycles between probe trials on one link
    probe_period: int = 200
    #: consecutive CLEAN trials required to reinstate (hysteresis)
    required_clean: int = 3
    #: lifetime probe budget per link; exhausting it → permanent
    max_trials: int = 25
    #: each flap multiplies that link's probe delays by this factor
    flap_multiplier: int = 2
    #: flaps (re-condemnations after reinstatement) → permanent
    max_flaps: int = 3
    #: random traffic-shaped probes per trial (on top of the id sweeps)
    random_probes: int = 8
    #: also drive every probe word through L-Ob (invert/shuffle) —
    #: distinguishes content-triggered trojans from stuck faults
    obfuscated: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start_after < 1 or self.probe_period < 1:
            raise ValueError("probe delays must be positive")
        if self.required_clean < 1:
            raise ValueError("required_clean must be at least 1")
        if self.max_trials < self.required_clean:
            raise ValueError("max_trials must cover required_clean trials")
        if self.flap_multiplier < 1:
            raise ValueError("flap_multiplier must be at least 1")
        if self.max_flaps < 1:
            raise ValueError("max_flaps must be at least 1")
        if self.random_probes < 0:
            raise ValueError("random_probes must be >= 0")

    def probe_config(self) -> ProbeConfig:
        """The per-trial probe shape this policy implies."""
        return ProbeConfig(
            random_probes=self.random_probes,
            obfuscated=self.obfuscated,
            seed=self.seed,
        )


@dataclass(frozen=True)
class ContainmentEvent:
    """One coordinator decision (kept in full; the stream is small)."""

    cycle: int
    #: "contain" (rerouted around), "refuse" (partition risk, drop-only
    #: fallback), "seal" (drained link disabled), "quarantine" (region),
    #: "partition_risk" (watchdog flagged stranded xy destinations),
    #: "probe" (probation trial verdict), "reinstate" (link returned to
    #: service), "flap_damp" (flap counted / link made permanent)
    kind: str
    link: Optional[LinkKey] = None
    detail: str = ""


class ContainmentCoordinator:
    """Global supervisor over one network's watchdog escalations.

    Attach after the watchdog so condemnations are consumed the same
    cycle they are raised::

        watchdog = RetransWatchdog(...).attach(net)
        coordinator = ContainmentCoordinator().attach(net, watchdog)

    The coordinator then *owns* the watchdog's ``take_condemned`` /
    ``take_partition_risks`` queues and its ``action_gate``; callers
    read containment state from the coordinator instead.
    """

    def __init__(
        self,
        config: Optional[ContainmentConfig] = None,
        probation: Optional[ProbationConfig] = None,
    ):
        self.config = config or ContainmentConfig()
        #: recovery policy; None keeps every condemnation permanent
        #: (the pre-probation behavior, byte-identical)
        self.probation = probation
        self.prober: Optional[LinkProber] = None
        self.network: Optional[Network] = None
        self.watchdog: Optional[RetransWatchdog] = None
        #: attacker localization engine; when set, region quarantine is
        #: replaced by *targeted* quarantine of localized neighborhoods
        self.localizer = None
        self._base_route_fn = None
        #: resolved turn model, or None when rerouting is unsafe
        self.reroute_model: Optional[str] = None
        #: links removed from routing (draining or sealed)
        self.avoid: frozenset[LinkKey] = frozenset()
        #: link -> "draining" | "sealed" | "drop_only"
        self.link_states: dict[LinkKey, str] = {}
        #: link -> cycles from its first ladder action to containment
        self.time_to_contain: dict[LinkKey, int] = {}
        #: partition risks consumed from the watchdog
        self.partition_risks: list[PartitionRisk] = []
        self.events: list[ContainmentEvent] = []
        #: observers called with every ContainmentEvent
        self.event_hooks: list[Callable[[ContainmentEvent], None]] = []
        # -- gate state ---------------------------------------------------
        self._budget_cycle = -1
        self._budget_left = 0
        self._next_try: dict[LinkKey, int] = {}
        self._deny_level: dict[LinkKey, int] = {}
        # -- quarantine state ---------------------------------------------
        self._condemn_history: list[tuple[LinkKey, int]] = []
        self._quarantined_rects: list[tuple[int, int, int, int]] = []
        #: localized estimates already acted on (targeted quarantine)
        self._targeted_links: set[LinkKey] = set()
        #: every link a targeted quarantine actually drained (the
        #: quarantine-economy metric the largescale experiment compares
        #: against flag-everything containment)
        self.targeted_admitted: set[LinkKey] = set()
        #: localizer version last consumed
        self._localizer_version = 0
        self.targeted_quarantines = 0
        # -- ladder onset tracking ----------------------------------------
        self._first_ladder_cycle: dict[LinkKey, int] = {}
        # -- probation state ----------------------------------------------
        #: link -> cycle of its next probe trial
        self._probe_due: dict[LinkKey, int] = {}
        #: link -> consecutive CLEAN trials so far
        self._clean_trials: dict[LinkKey, int] = {}
        #: link -> lifetime probe trials (survives flaps: the budget is
        #: per link, not per condemnation)
        self._trials: dict[LinkKey, int] = {}
        #: link -> cycle it entered containment (this episode)
        self._contain_cycle: dict[LinkKey, int] = {}
        #: links reinstated at least once — a later condemnation of one
        #: of these is a flap
        self._reinstated_once: set[LinkKey] = set()
        #: links condemned forever (flapped out or budget exhausted)
        self._permanent: set[LinkKey] = set()
        #: link -> flap count (re-condemnations after reinstatement)
        self.flap_counts: dict[LinkKey, int] = {}
        #: link -> cycles from (latest) condemnation to reinstatement
        self.time_to_reinstate: dict[LinkKey, int] = {}
        # -- counters -----------------------------------------------------
        self.actions_allowed = 0
        self.actions_denied = 0
        self.links_rerouted = 0
        self.links_refused = 0
        self.links_sealed = 0
        self.quarantines = 0
        self.links_reinstated = 0
        self.links_permanent = 0

    # -- wiring ------------------------------------------------------------
    def attach(
        self,
        network: Network,
        watchdog: Optional[RetransWatchdog] = None,
    ) -> "ContainmentCoordinator":
        """Register as a monitor; with a ``watchdog``, take ownership of
        its escalation outputs and action gate."""
        if self.network is not None:
            self.detach()
        self.network = network
        network.monitors.append(self)
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.action_gate = self._gate
            watchdog.event_hooks.append(self._observe_ladder)
        #: the routing in force before any containment — restored when
        #: the last avoided link is reinstated
        self._base_route_fn = network.route_fn
        if self.probation is not None:
            self.prober = LinkProber(
                network.cfg, self.probation.probe_config()
            )
        torus = network.cfg.topology == "torus"
        if self.config.reroute_model == "none":
            self.reroute_model = None
        elif self.config.reroute_model == "auto":
            if torus:
                # torus + "xy" is the only combination the config layer
                # admits, and its safe reroute is the clear-arc model
                self.reroute_model = "torus-arc"
            else:
                self.reroute_model = SAFE_REROUTE_MODELS.get(
                    network.cfg.routing
                )
        else:
            if torus and self.config.reroute_model != "torus-arc":
                raise ValueError(
                    "mesh turn models are not deadlock-safe on a torus; "
                    "use reroute_model='auto' or 'torus-arc'"
                )
            if not torus and self.config.reroute_model == "torus-arc":
                raise ValueError(
                    "reroute_model='torus-arc' requires a torus topology"
                )
            self.reroute_model = self.config.reroute_model
        return self

    def detach(self) -> None:
        if self.network is not None:
            try:
                self.network.monitors.remove(self)
            except ValueError:
                pass
        if self.watchdog is not None:
            if self.watchdog.action_gate == self._gate:
                self.watchdog.action_gate = None
            try:
                self.watchdog.event_hooks.remove(self._observe_ladder)
            except ValueError:
                pass
        self.network = None
        self.watchdog = None
        self.prober = None
        self._base_route_fn = None

    def _observe_ladder(self, event) -> None:
        """Watchdog event hook: remember when each link's ladder began
        (time-to-contain is measured from this onset)."""
        self._first_ladder_cycle.setdefault(event.link, event.cycle)

    def set_localizer(self, localizer) -> "ContainmentCoordinator":
        """Use a :class:`~repro.resilience.localize.TopologyLocalizer`
        to drive quarantine: contain the 1-hop neighborhood of each
        localized attacker instead of a bounding rectangle over every
        correlated condemnation."""
        self.localizer = localizer
        return self

    # -- the action gate ----------------------------------------------------
    def _gate(self, stage: EscalationStage, key: LinkKey, cycle: int) -> bool:
        """Global budget + per-link jittered retry backoff.

        Consulted by the watchdog before OBFUSCATE and DROP rungs; a
        denial is cheap (the entry stays deferred and retries later).
        """
        if cycle != self._budget_cycle:
            self._budget_cycle = cycle
            self._budget_left = self.config.max_actions_per_cycle
        if cycle < self._next_try.get(key, 0):
            self.actions_denied += 1
            return False
        if self._budget_left <= 0:
            level = self._deny_level.get(key, 0)
            base = min(
                self.config.retry_cap,
                self.config.retry_base << min(level, 16),
            )
            jitter = SeededStream(
                self.config.seed, "containment-gate", key[0], key[1].name, level
            ).random()
            delay = max(1, int(base * (1.0 + self.config.jitter * jitter)))
            self._next_try[key] = cycle + delay
            self._deny_level[key] = level + 1
            self.actions_denied += 1
            return False
        self._budget_left -= 1
        self._deny_level.pop(key, None)
        self._next_try.pop(key, None)
        self.actions_allowed += 1
        return True

    def next_event_cycle(self, network: Network, cycle: int):
        """Event-engine contract: the coordinator consumes watchdog
        escalations (which only exist on non-quiescent cycles) and
        advances link draining, whose sealing cycle feeds
        time-to-contain accounting — so any draining link or network
        activity pins the clock.  Quiescent with nothing draining, the
        only remaining work is the probe schedule, whose due cycles are
        known exactly; with no probation (or nothing probe-eligible)
        :meth:`on_cycle` is a proven no-op."""
        if not network.quiescent:
            return cycle
        for state in self.link_states.values():
            if state == "draining":
                return cycle
        wake = None
        if self.probation is not None:
            for key, state in self.link_states.items():
                if state == "draining" or key in self._permanent:
                    continue
                due = self._probe_due.get(key)
                if due is None:
                    continue
                due = max(due, cycle)
                if wake is None or due < wake:
                    wake = due
        return wake

    # -- per-cycle supervision ----------------------------------------------
    def on_cycle(self, network: Network, cycle: int) -> None:
        if self.watchdog is None:
            return
        for risk in self.watchdog.take_partition_risks():
            self.partition_risks.append(risk)
            self._log(
                ContainmentEvent(
                    risk.cycle, "partition_risk", risk.link,
                    detail=f"stranded={len(risk.stranded_dsts)}",
                )
            )
        fresh = self.watchdog.take_condemned()
        for key in fresh:
            self._handle_condemnation(network, key, cycle)
        if self.config.quarantine:
            if self.localizer is not None:
                self._advance_targeted(network, cycle)
            elif fresh:
                self._maybe_quarantine(network, cycle)
        if self.link_states:
            self._advance_draining(network, cycle)
        if self.probation is not None and self.link_states:
            self._advance_probation(network, cycle)

    def _handle_condemnation(
        self, network: Network, key: LinkKey, cycle: int
    ) -> None:
        if key in self.link_states:
            return
        self._condemn_history.append((key, cycle))
        self._contain_cycle[key] = cycle
        if key in self._reinstated_once:
            self._count_flap(key, cycle)
        onset = self._first_ladder_cycle.get(key, cycle)
        model = self.reroute_model
        if model is not None and turn_model_connected(
            network.cfg, model, self.avoid | {key}
        ):
            self._admit(network, key, cycle)
            self.time_to_contain[key] = cycle - onset
            self._log(
                ContainmentEvent(
                    cycle, "contain", key,
                    detail=f"reroute={model} avoid={len(self.avoid)}",
                )
            )
        else:
            # Refusal is containment too: the watchdog's drop-only mode
            # keeps purging the link into end-to-end resubmission.
            self.link_states[key] = "drop_only"
            self.links_refused += 1
            self.time_to_contain[key] = cycle - onset
            self._schedule_first_probe(key, cycle)
            reason = (
                "no deadlock-safe reroute model"
                if model is None
                else "reroute would partition the mesh"
            )
            self._log(
                ContainmentEvent(cycle, "refuse", key, detail=reason)
            )

    def _admit(self, network: Network, key: LinkKey, cycle: int) -> None:
        """Add ``key`` to the avoid-set and swap the routing function.
        Only call after ``turn_model_connected`` has passed."""
        self.avoid = self.avoid | {key}
        network.set_route_fn(
            avoid_routing(
                network.cfg, self.reroute_model, self.avoid
            ).route
        )
        network.wake_all()
        self.link_states[key] = "draining"
        self.links_rerouted += 1

    def _advance_draining(self, network: Network, cycle: int) -> None:
        """Seal drained links: disable hardware only once nothing is
        pinned, staged or in flight on it (invariant-safe by vacuity).

        Besides an empty retransmission buffer and an idle wire, every
        downstream VC holder must be clear (a held VC means a wormhole
        is mid-transfer — sealing between its flits would cut it and
        leak the holder at every later hop) and no upstream input VC may
        be route-committed to this output (its head was routed before
        the avoid-set grew; sealing now would strand it at VA forever,
        since allocation skips disabled links).  Until then the link
        simply stays avoided-but-enabled, which is already safe."""
        for key, state in list(self.link_states.items()):
            if state != "draining":
                continue
            out = network.output_port_of(key)
            link = network.links[key]
            if not (out.retrans.is_empty and link.idle and not link.disabled):
                continue
            if any(holder is not None for holder in out.holders):
                continue
            router = network.routers[key[0]]
            committed = any(
                vc.route_out == key[1]
                and (vc.buffer or vc.cur_pkt is not None)
                for port in router.inputs.values()
                for vc in port.vcs
            )
            if committed:
                continue
            network.disable_link(key)
            self.link_states[key] = "sealed"
            self.links_sealed += 1
            self._log(ContainmentEvent(cycle, "seal", key))
            self._schedule_first_probe(key, cycle)

    # -- probation ----------------------------------------------------------
    def _damp(self, key: LinkKey) -> int:
        """Flap-damping multiplier on this link's probe delays."""
        if self.probation is None:
            return 1
        flaps = self.flap_counts.get(key, 0)
        # 16 doublings put the next probe past any realistic run length;
        # the cap only guards against integer blow-up.
        return self.probation.flap_multiplier ** min(flaps, 16)

    def _count_flap(self, key: LinkKey, cycle: int) -> None:
        """A reinstated link was condemned again: the trojan toggled
        through a probe window.  Damp its future probes exponentially;
        enough flaps prove the link is gamed and condemn it for good."""
        flaps = self.flap_counts.get(key, 0) + 1
        self.flap_counts[key] = flaps
        assert self.probation is not None
        if flaps >= self.probation.max_flaps:
            self._permanent.add(key)
            self._probe_due.pop(key, None)
            self.links_permanent += 1
            detail = f"flaps={flaps} — condemned permanently"
        else:
            detail = f"flaps={flaps} damp=x{self._damp(key)}"
        self._log(ContainmentEvent(cycle, "flap_damp", key, detail=detail))

    def _schedule_first_probe(self, key: LinkKey, cycle: int) -> None:
        """Containment is final (link sealed / drop-only): start the
        probation clock, flap-damped."""
        if self.probation is None or key in self._permanent:
            return
        self._clean_trials[key] = 0
        self._probe_due[key] = (
            cycle + self.probation.start_after * self._damp(key)
        )

    def _advance_probation(self, network: Network, cycle: int) -> None:
        """Run due probe trials and reinstate links that earned it."""
        probation = self.probation
        prober = self.prober
        assert probation is not None and prober is not None
        for key, state in list(self.link_states.items()):
            if state == "draining" or key in self._permanent:
                continue
            due = self._probe_due.get(key)
            if due is None or cycle < due:
                continue
            trials = self._trials.get(key, 0)
            if trials >= probation.max_trials:
                self._permanent.add(key)
                self._probe_due.pop(key, None)
                self.links_permanent += 1
                self._log(
                    ContainmentEvent(
                        cycle, "flap_damp", key,
                        detail=(
                            f"probe budget exhausted after {trials} "
                            "trials — condemned permanently"
                        ),
                    )
                )
                continue
            trial = prober.trial(network.links[key], cycle, trials)
            self._trials[key] = trials + 1
            self._probe_due[key] = (
                cycle + probation.probe_period * self._damp(key)
            )
            if trial.verdict is ProbeVerdict.CLEAN:
                clean = self._clean_trials.get(key, 0) + 1
            else:
                clean = 0
            self._clean_trials[key] = clean
            verdict = trial.verdict.value
            if trial.detail:
                verdict += f":{trial.detail}"
            self._log(
                ContainmentEvent(
                    cycle, "probe", key,
                    detail=(
                        f"verdict={verdict} "
                        f"clean={clean}/{probation.required_clean}"
                    ),
                )
            )
            if clean >= probation.required_clean:
                self._reinstate(network, key, cycle, state)

    def _reinstate(
        self, network: Network, key: LinkKey, cycle: int, state: str
    ) -> None:
        """Return a contained link to service — sealing run in reverse.

        Sealed links get their hardware re-enabled (fresh sequencing
        epoch, stale poison tombstones cleared) and leave the avoid-set;
        shrinking the avoid-set only adds legal routes, so connectivity
        is preserved by construction, but the admission predicate is
        re-checked all the same.  Either mode restarts the watchdog
        ladder from rung 0 — a reinstated link has earned a clean
        record, not a resumed escalation.
        """
        model = self.reroute_model
        if state == "sealed":
            if key in self.avoid:
                remaining = self.avoid - {key}
                if model is not None and not turn_model_connected(
                    network.cfg, model, remaining
                ):  # pragma: no cover - shrinking avoid cannot disconnect
                    return
                network.reinstate_link(key)
                self.avoid = remaining
                if self.avoid:
                    network.set_route_fn(
                        avoid_routing(network.cfg, model, self.avoid).route
                    )
                else:
                    network.set_route_fn(self._base_route_fn)
            else:
                network.reinstate_link(key)
        if self.watchdog is not None:
            self.watchdog.reset_link(key)
        del self.link_states[key]
        self._next_try.pop(key, None)
        self._deny_level.pop(key, None)
        self._first_ladder_cycle.pop(key, None)
        self._probe_due.pop(key, None)
        self._clean_trials.pop(key, None)
        self._reinstated_once.add(key)
        self.links_reinstated += 1
        contained_at = self._contain_cycle.get(key, cycle)
        self.time_to_reinstate[key] = cycle - contained_at
        self._log(
            ContainmentEvent(
                cycle, "reinstate", key,
                detail=(
                    f"mode={state} after "
                    f"{self._trials.get(key, 0)} trials"
                ),
            )
        )

    # -- targeted quarantine (localization-driven) ---------------------------
    def _advance_targeted(self, network: Network, cycle: int) -> None:
        """Quarantine the 1-hop neighborhood of each localized attacker.

        Strictly narrower than both the rectangle escalation and
        flag-everything containment: only the out-links of the
        localized link's two endpoints are candidates, each admitted
        individually under the same connectivity predicate (greedy in
        canonical order, so the admitted subset is deterministic).
        Works identically on every topology — neighborhoods are graph
        neighborhoods, not geometric rectangles.
        """
        localizer = self.localizer
        if localizer.version == self._localizer_version:
            return
        self._localizer_version = localizer.version
        model = self.reroute_model
        if model is None:
            return
        cfg = network.cfg
        for estimate in localizer.estimates():
            if estimate.link in self._targeted_links:
                continue
            self._targeted_links.add(estimate.link)
            region = sorted(neighborhood_links(cfg, estimate.link))
            admitted: list[LinkKey] = []
            for key in region:
                if key in self.avoid:
                    continue
                if turn_model_connected(
                    cfg, model, self.avoid | {*admitted, key}
                ):
                    admitted.append(key)
            if not admitted:
                self._log(
                    ContainmentEvent(
                        cycle, "refuse", estimate.link,
                        detail="targeted quarantine would partition",
                    )
                )
                continue
            self.avoid = self.avoid | frozenset(admitted)
            network.set_route_fn(
                avoid_routing(cfg, model, self.avoid).route
            )
            network.wake_all()
            self.targeted_admitted.update(admitted)
            for key in admitted:
                if key not in self.link_states:
                    self.link_states[key] = "draining"
                    self._contain_cycle[key] = cycle
            self.quarantines += 1
            self.targeted_quarantines += 1
            self._log(
                ContainmentEvent(
                    cycle, "quarantine", estimate.link,
                    detail=(
                        f"targeted links={len(admitted)} "
                        f"score={estimate.score:.2f}"
                    ),
                )
            )

    # -- region quarantine ---------------------------------------------------
    def _maybe_quarantine(self, network: Network, cycle: int) -> None:
        cfg = network.cfg
        if cfg.topology == "torus":
            # wrap-around makes bounding rectangles ill-defined; torus
            # networks escalate through localization-driven targeted
            # quarantine (set_localizer) or stay per-link
            return
        recent = [
            k for k, c in self._condemn_history
            if cycle - c <= self.config.quarantine_window
        ]
        if len(recent) < self.config.quarantine_threshold:
            return
        xs: list[int] = []
        ys: list[int] = []
        for key in recent:
            for router in link_endpoints(cfg, key):
                x, y = cfg.router_xy(router)
                xs.append(x)
                ys.append(y)
        rect = (min(xs), min(ys), max(xs), max(ys))
        if rect in self._quarantined_rects:
            return
        area = (rect[2] - rect[0] + 1) * (rect[3] - rect[1] + 1)
        if area > self.config.quarantine_max_fraction * cfg.num_routers:
            self._log(
                ContainmentEvent(
                    cycle, "refuse", None,
                    detail=(
                        f"quarantine rect={rect} covers {area} routers "
                        "— attack not localized"
                    ),
                )
            )
            self._quarantined_rects.append(rect)
            return
        inside = {
            r for r in range(cfg.num_routers)
            if rect[0] <= cfg.router_xy(r)[0] <= rect[2]
            and rect[1] <= cfg.router_xy(r)[1] <= rect[3]
        }
        # Only links wholly inside the rectangle are quarantined:
        # boundary-crossing links survive, so the rectangle can never
        # isolate the region (or the rest of the mesh) by itself —
        # admission still re-checks global connectivity.
        region = frozenset(
            key for key in network.links
            if link_endpoints(cfg, key)[0] in inside
            and link_endpoints(cfg, key)[1] in inside
        )
        new = region - self.avoid
        model = self.reroute_model
        if not new or model is None:
            return
        admitted = new
        scope = "full"
        if not turn_model_connected(cfg, model, self.avoid | admitted):
            # The full rectangle almost always contains a sole-route
            # link (any westbound or same-column inner link under
            # west-first), so fall back to the inner links that have
            # non-minimal detours: the eastbound ones.  Everything the
            # subset leaves out still drains through the watchdog's
            # drop-only ladder if it ever misbehaves.
            admitted = frozenset(
                key for key in new if key[1] is Direction.EAST
            )
            scope = "east-subset"
            if (
                model != "west-first"
                or not admitted
                or not turn_model_connected(cfg, model, self.avoid | admitted)
            ):
                self._log(
                    ContainmentEvent(
                        cycle, "refuse", None,
                        detail=f"quarantine rect={rect} would partition",
                    )
                )
                self._quarantined_rects.append(rect)
                return
        self.avoid = self.avoid | admitted
        network.set_route_fn(
            avoid_routing(cfg, model, self.avoid).route
        )
        network.wake_all()
        for key in admitted:
            if key not in self.link_states:
                self.link_states[key] = "draining"
                self._contain_cycle[key] = cycle
        self.quarantines += 1
        self._quarantined_rects.append(rect)
        self._log(
            ContainmentEvent(
                cycle, "quarantine", None,
                detail=f"rect={rect} scope={scope} links={len(admitted)}",
            )
        )

    # -- reporting -----------------------------------------------------------
    def _log(self, event: ContainmentEvent) -> None:
        self.events.append(event)
        for hook in self.event_hooks:
            hook(event)

    @property
    def contained_links(self) -> frozenset[LinkKey]:
        """Links the coordinator has taken action on, in any mode."""
        return frozenset(self.link_states)

    def summary(self) -> dict:
        """JSON-friendly containment report (experiments embed this)."""
        return {
            "reroute_model": self.reroute_model,
            "links_rerouted": self.links_rerouted,
            "links_refused": self.links_refused,
            "links_sealed": self.links_sealed,
            "quarantines": self.quarantines,
            "targeted_quarantines": self.targeted_quarantines,
            "targeted_links": len(self.targeted_admitted),
            "actions_allowed": self.actions_allowed,
            "actions_denied": self.actions_denied,
            "partition_risks": len(self.partition_risks),
            "time_to_contain": {
                f"{key[0]}->{key[1].name}": value
                for key, value in sorted(self.time_to_contain.items())
            },
            "max_time_to_contain": (
                max(self.time_to_contain.values())
                if self.time_to_contain
                else None
            ),
            "probation": self._probation_summary(),
        }

    def _probation_summary(self) -> Optional[dict]:
        if self.probation is None:
            return None
        return {
            "links_reinstated": self.links_reinstated,
            "links_permanent": self.links_permanent,
            "still_contained": len(self.link_states),
            "trials_run": self.prober.trials_run if self.prober else 0,
            "probes_sent": self.prober.probes_sent if self.prober else 0,
            "flap_counts": {
                f"{key[0]}->{key[1].name}": value
                for key, value in sorted(self.flap_counts.items())
            },
            "time_to_reinstate": {
                f"{key[0]}->{key[1].name}": value
                for key, value in sorted(self.time_to_reinstate.items())
            },
            "max_time_to_reinstate": (
                max(self.time_to_reinstate.values())
                if self.time_to_reinstate
                else None
            ),
        }
