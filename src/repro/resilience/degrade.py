"""Graceful degradation: bounded retries end in drop-with-notify.

The baseline microarchitecture retries a NACKed flit forever — exactly
the behaviour TASP farms into deadlock.  This module implements the
give-up path: atomically purge a condemned packet from a pinned output
port, return every reserved resource, and leave delivery to the
end-to-end resubmission ledger (:class:`repro.core.recovery.RecoveryManager`).

Dropping from a wormhole network safely is all bookkeeping:

* only ``READY`` retransmission entries may be removed (launches and
  ACK/NACKs strictly alternate per tag, so a READY entry has no
  transmission still on the wire);
* the whole packet is condemned, never a single flit — a surviving
  body flit without its head can never route and would pin the
  downstream VC forever;
* each dropped entry returns its downstream credit and registers its
  ``vc_seq`` as skipped, so the receiver's resequencer steps over the
  hole instead of waiting on it;
* the packet id is *poisoned* at the downstream receiver: flits of the
  packet still flowing in from behind are accepted-and-discarded
  (tombstoned), which drains the wormhole and keeps per-VC sequencing
  and credit accounting exact;
* dropping the tail entry releases the held downstream VC (the ACK
  that would normally clear the holder will never come);
* finally the whole network is swept (:meth:`Network.purge_packet`):
  flits of the packet that already crossed this port keep flowing with
  no tail behind them, and the VC holders that head fragment pinned at
  every later hop must be force-released or the mesh wedges.

Every removed flit is counted through
:meth:`repro.noc.stats.NetworkStats.on_flit_degraded`, so flit
conservation (checked by :class:`repro.noc.invariants.NetworkValidator`)
holds across the drop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.network import Network
from repro.noc.retrans import EntryState
from repro.noc.topology import LinkKey


@dataclass(frozen=True)
class DropReport:
    """What purging one packet from one output port did."""

    link: LinkKey
    pkt_id: int
    cycle: int
    #: retransmission entries removed at the port
    entries_dropped: int
    #: staged-but-undelivered flits tombstoned at the receiver
    staged_discarded: int
    #: entries of the packet left IN_FLIGHT (their ACKs settle the rest)
    entries_in_flight: int
    #: True when the drop released a held downstream VC
    holder_released: bool
    #: flits of the packet purged network-wide (the wormhole fragments
    #: up- and downstream of the dropping port)
    flits_purged: int = 0


def drop_packet_at_port(
    network: Network, key: LinkKey, pkt_id: int, cycle: int
) -> DropReport:
    """Purge every droppable flit of ``pkt_id`` from the output port of
    ``key`` and condemn the packet for end-to-end resubmission.

    Returns a :class:`DropReport`; the caller (normally the watchdog) is
    responsible for actually resubmitting the packet.
    """
    out = network.output_port_of(key)
    receiver = network.receiver_of(key)

    entries_dropped = 0
    entries_in_flight = 0
    holder_released = False
    for entry in list(out.retrans):
        if entry.flit.pkt_id != pkt_id:
            continue
        if entry.state is not EntryState.READY:
            # Still on the wire; its arrival is poisoned below and the
            # OK-ACK retires the entry (clearing the holder if it is the
            # tail) through the ordinary path.
            entries_in_flight += 1
            continue
        out.retrans.drop(entry.tag)
        entries_dropped += 1
        # The downstream slot this entry reserved will never be used:
        # hand the credit back and tell the resequencer to step over
        # the sequence number.
        if entry.vc_seq >= 0:
            receiver.skip_seq(entry.out_vc, entry.vc_seq)
        out.credits.release(entry.out_vc, cycle)
        network.stats.on_flit_degraded(entry.flit)
        if entry.flit.is_tail and out.holders[entry.out_vc] is not None:
            # The tail ACK that would release the downstream VC will
            # never arrive — release it here.
            out.holders[entry.out_vc] = None
            out.holder_pkts[entry.out_vc] = None
            holder_released = True

    receiver.poison_packet(pkt_id)
    staged_discarded = receiver.discard_staged(pkt_id, cycle)
    flits_purged = network.purge_packet(pkt_id, cycle)
    network.stats.degraded_packets += 1
    return DropReport(
        link=key,
        pkt_id=pkt_id,
        cycle=cycle,
        entries_dropped=entries_dropped,
        staged_discarded=staged_discarded,
        entries_in_flight=entries_in_flight,
        holder_released=holder_released,
        flits_purged=flits_purged,
    )
