"""Online traffic-statistics detector: flag links before the ladder.

The retransmission watchdog is *reactive*: it waits for a link to
accumulate retries, drops and pinned entries before escalating, which
on a flood-assisted attack means the interference tree is already
saturating by the time containment starts.  Topology-aware DDoS work
(Weerasena et al.) shows the attack's statistical footprint — a step
change in per-link retransmission rate and per-router back-pressure —
is visible much earlier.  :class:`TrafficStatsDetector` watches exactly
those two series:

* **retransmission rate** — per-link NACK count deltas per window
  (``EccReceiver.nacks_sent``), the direct signature of a fault- or
  trojan-corrupted wire;
* **back-pressure** — per-router link-input occupancy sampled at
  window boundaries, the signature of the congestion tree a DoS builds
  upstream of the victim link.

Each channel keeps a running Welford baseline (mean/variance) built
from its *own* history; a window whose value sits more than
``z_threshold`` standard deviations above that baseline is anomalous,
and ``consecutive`` anomalous windows in a row flag the channel.  A
flagged link is fed to :meth:`RetransWatchdog.mark_suspect`, which
halves the ladder thresholds for that link — detection accelerates
containment, it never bypasses the ladder's own evidence.  Flagged
routers are reported as events only (back-pressure localizes a region,
not a culprit link).

**False-positive contract.**  Under a stationary benign load the
windowed series are approximately normal, so one window exceeds
``z_threshold = 4`` with probability ≈ 3.2e-5; two consecutive
independent exceedances ≈ 1e-9 per channel per window-pair.  Even at
224 links × thousands of windows, the expected number of false flags
per run is far below one — and the *cost* of one is bounded anyway: a
falsely-flagged link still has to climb the (shortened) ladder on real
evidence before condemnation, and probation reinstates a healthy link
after ``required_clean`` clean probes.  Anomalous windows are excluded
from baseline updates so an ongoing attack cannot poison its own
detection threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.noc.network import Network
from repro.noc.topology import LinkKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.watchdog import RetransWatchdog


@dataclass(frozen=True)
class DetectConfig:
    """Detector policy (deterministic; no randomness anywhere)."""

    #: statistics window in cycles
    window: int = 64
    #: standard deviations above baseline that make a window anomalous
    z_threshold: float = 4.0
    #: consecutive anomalous windows required to flag a channel
    consecutive: int = 2
    #: windows of unconditional baseline building before any flagging
    warmup_windows: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.z_threshold <= 0.0:
            raise ValueError("z_threshold must be positive")
        if self.consecutive < 1:
            raise ValueError("consecutive must be at least 1")
        if self.warmup_windows < 2:
            raise ValueError("warmup needs at least 2 windows of baseline")


@dataclass(frozen=True)
class DetectionEvent:
    """One detector decision."""

    cycle: int
    #: "suspect_link" (fed to the watchdog) or "suspect_router"
    #: (back-pressure hotspot, reported only)
    kind: str
    link: Optional[LinkKey] = None
    router: Optional[int] = None
    z: float = 0.0
    detail: str = ""


class Welford:
    """Running mean/variance over one channel's windowed series.

    Public on purpose: the streaming classifier in
    :mod:`repro.serve.classify` applies the same baseline/streak rules
    to bus-derived feature frames, so the statistical core lives once.
    """

    __slots__ = ("count", "mean", "_m2", "streak", "last")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        #: consecutive anomalous windows so far
        self.streak = 0
        #: previous cumulative counter value (for delta channels)
        self.last = 0

    def admit(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    def z_score(self, x: float) -> float:
        if self.count < 2:
            return 0.0
        var = self._m2 / (self.count - 1)
        sigma = math.sqrt(var)
        if sigma < 1e-9:
            # A flat baseline: any upward step is infinitely surprising
            # in z terms; report a large finite score instead.
            return 0.0 if x <= self.mean + 1e-9 else float("inf")
        return (x - self.mean) / sigma

    def reset_streak(self) -> None:
        self.streak = 0

    def observe(self, value: float, config: DetectConfig) -> bool:
        """Fold one window into this channel under ``config``'s policy;
        True when the anomaly streak just reached the flagging
        threshold.  Anomalous windows are excluded from the baseline so
        an ongoing attack cannot drag its own threshold up."""
        if self.count < config.warmup_windows:
            self.admit(value)
            return False
        z = self.z_score(value)
        if z <= config.z_threshold:
            self.reset_streak()
            self.admit(value)
            return False
        self.streak += 1
        return self.streak >= config.consecutive


#: backwards-compatible private alias (pre-serve callers)
_Welford = Welford


class TrafficStatsDetector:
    """Window-boundary monitor feeding the watchdog ladder early."""

    #: profiler phase this monitor's on_cycle time is charged to
    profile_phase = "detect"

    def __init__(self, config: Optional[DetectConfig] = None):
        self.config = config or DetectConfig()
        self.network: Optional[Network] = None
        self.watchdog: Optional["RetransWatchdog"] = None
        self._links: dict[LinkKey, _Welford] = {}
        self._routers: dict[int, _Welford] = {}
        #: channels already flagged (reported once, then left to the
        #: watchdog / containment layers)
        self._flagged_links: set[LinkKey] = set()
        self._flagged_routers: set[int] = set()
        self.events: list[DetectionEvent] = []
        self.event_hooks: list[Callable[[DetectionEvent], None]] = []
        # -- counters -----------------------------------------------------
        self.windows_observed = 0
        self.anomalous_windows = 0

    # -- wiring ------------------------------------------------------------
    def attach(
        self,
        network: Network,
        watchdog: Optional["RetransWatchdog"] = None,
    ) -> "TrafficStatsDetector":
        """Register as a monitor.  Attach *before* the watchdog so a
        flag raised at a window boundary shortens that same cycle's
        ladder evaluation."""
        if self.network is not None:
            self.detach()
        self.network = network
        network.monitors.append(self)
        self.watchdog = watchdog
        self._links = {key: _Welford() for key in network.links}
        self._routers = {
            rid: _Welford() for rid in range(network.cfg.num_routers)
        }
        return self

    def detach(self) -> None:
        if self.network is not None:
            try:
                self.network.monitors.remove(self)
            except ValueError:
                pass
        self.network = None
        self.watchdog = None

    def next_event_cycle(self, network: Network, cycle: int):
        """Event-engine contract: statistics only change state at
        window boundaries, so those are the only cycles this monitor
        needs (same boundary arithmetic as the obs window collector)."""
        if cycle % self.config.window == 0:
            return cycle
        return (cycle // self.config.window + 1) * self.config.window

    # -- per-cycle hook -----------------------------------------------------
    def on_cycle(self, network: Network, cycle: int) -> None:
        if cycle == 0 or cycle % self.config.window != 0:
            return
        self.windows_observed += 1
        for key, stats in self._links.items():
            if key in self._flagged_links:
                continue
            receiver = network.receiver_of(key)
            value = float(receiver.nacks_sent - stats.last)
            stats.last = receiver.nacks_sent
            if self._observe(stats, value):
                self._flag_link(key, cycle, stats.z_score(value))
        for rid, stats in self._routers.items():
            if rid in self._flagged_routers:
                continue
            value = float(network.routers[rid].link_input_occupancy())
            if self._observe(stats, value):
                self._flag_router(rid, cycle, stats.z_score(value))

    def _observe(self, stats: Welford, value: float) -> bool:
        """Fold one window into a channel; True when its streak just
        reached the flagging threshold."""
        before = stats.streak
        flagged = stats.observe(value, self.config)
        if stats.streak > before:
            self.anomalous_windows += 1
        return flagged

    def _flag_link(self, key: LinkKey, cycle: int, z: float) -> None:
        # clamp: a flat-baseline step scores inf, which strict JSON
        # exporters cannot carry
        z = min(z, 1e9)
        self._flagged_links.add(key)
        if self.watchdog is not None:
            self.watchdog.mark_suspect(key)
        self._emit(
            DetectionEvent(
                cycle, "suspect_link", link=key, z=z,
                detail=f"retrans-rate z={z:.1f}",
            )
        )

    def _flag_router(self, rid: int, cycle: int, z: float) -> None:
        z = min(z, 1e9)
        self._flagged_routers.add(rid)
        self._emit(
            DetectionEvent(
                cycle, "suspect_router", router=rid, z=z,
                detail=f"back-pressure z={z:.1f}",
            )
        )

    def _emit(self, event: DetectionEvent) -> None:
        self.events.append(event)
        for hook in self.event_hooks:
            hook(event)

    # -- reporting -----------------------------------------------------------
    @property
    def suspect_links(self) -> frozenset[LinkKey]:
        return frozenset(self._flagged_links)

    @property
    def suspect_routers(self) -> frozenset[int]:
        return frozenset(self._flagged_routers)

    def summary(self) -> dict:
        """JSON-friendly detection report (experiments embed this)."""
        return {
            "windows_observed": self.windows_observed,
            "anomalous_windows": self.anomalous_windows,
            "suspect_links": [
                f"{key[0]}->{key[1].name}"
                for key in sorted(self._flagged_links)
            ],
            "suspect_routers": sorted(self._flagged_routers),
        }
