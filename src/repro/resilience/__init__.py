"""Resilience layer: chaos campaigns, the watchdog ladder, degradation.

Three cooperating pieces on top of the NoC simulator:

* :mod:`repro.resilience.scenarios` / :mod:`repro.resilience.campaign`
  — declarative, seeded chaos campaigns that inject scheduled fault
  events while auditing conservation invariants and exactly-once
  delivery;
* :mod:`repro.resilience.watchdog` — per-output-port progress timers
  that walk pinned retransmission slots up an escalation ladder
  (exponential backoff -> forced L-Ob -> drop-with-notify -> condemn);
* :mod:`repro.resilience.degrade` — the graceful-degradation drop path
  that purges a condemned packet without breaking credit, sequence or
  flit conservation, handing delivery to the end-to-end ledger;
* :mod:`repro.resilience.detect` — an online traffic-statistics
  detector (windowed retransmission-rate and back-pressure z-scores)
  that feeds the watchdog ladder early;
* :mod:`repro.resilience.probe` / probation in
  :mod:`repro.resilience.containment` — the recovery half of the loop:
  BIST-style traffic-shaped probing of contained links, hysteretic
  reinstatement, exponential flap damping.
"""

from repro.resilience.containment import (
    ContainmentConfig,
    ContainmentCoordinator,
    ContainmentEvent,
    ProbationConfig,
    SAFE_REROUTE_MODELS,
)
from repro.resilience.detect import (
    DetectConfig,
    DetectionEvent,
    TrafficStatsDetector,
)
from repro.resilience.probe import (
    LinkProber,
    ProbeConfig,
    ProbeTrial,
    ProbeVerdict,
)
from repro.resilience.campaign import (
    CampaignReport,
    CampaignSpec,
    ChaosCampaign,
    run_campaign,
)
from repro.resilience.degrade import DropReport, drop_packet_at_port
from repro.resilience.scenarios import (
    ChaosEvent,
    CreditFreeze,
    LinkKill,
    RouterStall,
    StuckAtOnset,
    TransientBurst,
    TrojanActivation,
    random_events,
    targeted_stream,
    uniform_traffic,
)
from repro.resilience.watchdog import (
    EscalationEvent,
    EscalationStage,
    PartitionRisk,
    RetransWatchdog,
    WatchdogConfig,
)

__all__ = [
    "ContainmentConfig",
    "ContainmentCoordinator",
    "ContainmentEvent",
    "ProbationConfig",
    "SAFE_REROUTE_MODELS",
    "DetectConfig",
    "DetectionEvent",
    "TrafficStatsDetector",
    "LinkProber",
    "ProbeConfig",
    "ProbeTrial",
    "ProbeVerdict",
    "PartitionRisk",
    "CampaignReport",
    "CampaignSpec",
    "ChaosCampaign",
    "run_campaign",
    "DropReport",
    "drop_packet_at_port",
    "ChaosEvent",
    "CreditFreeze",
    "LinkKill",
    "RouterStall",
    "StuckAtOnset",
    "TransientBurst",
    "TrojanActivation",
    "random_events",
    "targeted_stream",
    "uniform_traffic",
    "EscalationEvent",
    "EscalationStage",
    "RetransWatchdog",
    "WatchdogConfig",
]
