"""Topology-aware attacker localization.

The traffic-statistics detector (:mod:`repro.resilience.detect`) flags
*symptoms*: per-link NACK z-scores and per-router back-pressure
z-scores.  A trojan's interference propagates — upstream links back up,
neighboring routers congest — so under a coordinated attack the flag
set is a cloud around each attacker, and containing every flagged
channel over-quarantines badly.

:class:`TopologyLocalizer` fuses those multi-point footprints over the
topology graph to *triangulate* the attackers:

1. every detector flag becomes a weighted footprint anchored at a
   router (a link's source router, or the flagged router itself);
2. footprints within ``cluster_radius`` graph hops of each other merge
   into clusters (union-find; :meth:`NoCConfig.hop_distance` is wrap-
   and express-aware, so clustering is correct on every topology);
3. within each cluster, every flagged link is a *candidate* attacker
   placement, scored by the footprint mass it explains —
   ``sum(z_f / (1 + dist(candidate, f)))`` over the cluster's
   footprints — i.e. candidates are ranked by how well the observed
   interference tree decays with propagation distance from them;
4. once a cluster's accumulated z-mass passes ``min_score`` its
   candidates become :class:`AttackerEstimate`\\ s under non-maximum
   suppression: strongest first (ties break on the smallest link
   key), each surviving candidate suppresses every weaker candidate
   within ``cluster_radius`` hops.  A coordinated attack whose
   congestion trees *bridge* — chaining two attackers' footprints
   into one merged cluster — therefore still yields one estimate per
   attacker, while a false flag adjacent to a real attacker merges
   into it.

**Accuracy contract**: the detector's z-scores are largest on the
attacked link itself (NACKs are generated *at* the trojan) and decay
with distance, so with footprints present every surviving candidate
is the attacked link or a link sharing an endpoint with it — within
one hop of the true placement.  The ``largescale`` experiment asserts
exactly this on a 16x16 mesh and an 8x8 torus under N=3 coordinated
trojans plus a flood.

The localizer subscribes to ``detector.event_hooks`` — it is not a
network monitor and needs no ``next_event_cycle`` hook.  Detection
events fire at identical cycles under the sweep and event engines (the
detector pins its window boundaries), and estimates re-derive
deterministically from the flag set, so instrumented reports stay
byte-identical across engines by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from repro.noc.config import NoCConfig
from repro.noc.topology import LinkKey, link_endpoints
from repro.obs import profiler as obs_profiler
from repro.resilience.detect import DetectionEvent, TrafficStatsDetector


@dataclass(frozen=True)
class LocalizeConfig:
    """Localization policy knobs (pure function of the flag stream)."""

    #: graph distance (hops) within which footprints merge into one
    #: cluster — one attacker's interference tree, not two attackers'
    cluster_radius: int = 2
    #: z-mass a cluster must accumulate before naming an attacker
    min_score: float = 8.0
    #: cap on simultaneously named attackers (largest scores win)
    max_attackers: int = 8

    def __post_init__(self) -> None:
        if self.cluster_radius < 0:
            raise ValueError("cluster_radius must be >= 0")
        if self.min_score < 0:
            raise ValueError("min_score must be >= 0")
        if self.max_attackers < 1:
            raise ValueError("max_attackers must be at least 1")


@dataclass(frozen=True)
class AttackerEstimate:
    """One localized attacker placement."""

    #: best-guess attacked link
    link: LinkKey
    #: its upstream (driving) router
    router: int
    #: footprint mass the placement explains
    score: float
    #: footprints fused into this estimate
    cluster_size: int
    #: cycle of the detection event that (last) updated the estimate
    cycle: int


@dataclass(frozen=True)
class LocalizeEvent:
    """Estimate stream entry (emitted when an estimate appears or its
    placement moves; score-only refinements are silent)."""

    cycle: int
    kind: str  # "estimate"
    link: LinkKey
    router: int
    score: float
    detail: str = ""


@dataclass
class _Footprint:
    """One detector flag, anchored on the topology graph."""

    anchor: int  # router the symptom is measured at
    z: float
    link: Optional[LinkKey] = None  # set for link flags


class TopologyLocalizer:
    """Fuses detector footprints into ranked attacker placements."""

    #: phase the enclosing lap charges this hook's time to — the
    #: localizer runs inside the detector's monitor slot, so its share
    #: is reattributed out of "detect" when profiling is armed.  The
    #: serving pipeline (no enclosing lap) sets this to ``None``.
    profile_source: Optional[str] = "detect"

    def __init__(
        self, cfg: NoCConfig, config: Optional[LocalizeConfig] = None
    ):
        self.cfg = cfg
        self.config = config or LocalizeConfig()
        self.detector: Optional[TrafficStatsDetector] = None
        #: flag key -> footprint ("link", key) / ("router", rid)
        self._footprints: dict[tuple, _Footprint] = {}
        #: current ranked estimates (score descending)
        self._estimates: tuple[AttackerEstimate, ...] = ()
        #: bumped whenever the estimate *placements* change
        self.version = 0
        self.events: list[LocalizeEvent] = []
        #: observers called with every LocalizeEvent
        self.event_hooks: list[Callable[[LocalizeEvent], None]] = []
        self.flags_fused = 0

    # -- wiring --------------------------------------------------------
    def attach(self, detector: TrafficStatsDetector) -> "TopologyLocalizer":
        """Subscribe to the detector's flag stream."""
        self.detector = detector
        detector.event_hooks.append(self.ingest)
        return self

    def detach(self) -> None:
        if self.detector is not None:
            try:
                self.detector.event_hooks.remove(self.ingest)
            except ValueError:
                pass
        self.detector = None

    # -- footprint ingestion -------------------------------------------
    def ingest(self, event: DetectionEvent) -> None:
        """Fuse one detector flag into the footprint set.

        The public entry point: ``attach`` wires it to a live
        detector's hook list, and the serving pipeline
        (:mod:`repro.serve.classify`) feeds it reconstructed events
        from the bus stream — both paths re-derive identical estimates
        from identical flag sequences.
        """
        if event.kind == "suspect_link" and event.link is not None:
            anchor = event.link[0]
            fp_key = ("link", event.link)
            footprint = _Footprint(anchor, event.z, event.link)
        elif event.kind == "suspect_router" and event.router is not None:
            fp_key = ("router", event.router)
            footprint = _Footprint(event.router, event.z)
        else:
            return
        previous = self._footprints.get(fp_key)
        if previous is not None:
            # keep the strongest observation of a repeated symptom
            if event.z <= previous.z:
                return
        self._footprints[fp_key] = footprint
        self.flags_fused += 1
        self._refresh(event.cycle)

    #: backwards-compatible alias (pre-serve hook wiring)
    _on_detect = ingest

    # -- clustering and scoring ----------------------------------------
    def _refresh(self, cycle: int) -> None:
        prof = obs_profiler.current()
        if prof is None:
            self._refresh_inner(cycle)
            return
        t0 = perf_counter()
        self._refresh_inner(cycle)
        prof.reattribute(
            perf_counter() - t0, "localize", self.profile_source
        )

    def _refresh_inner(self, cycle: int) -> None:
        footprints = list(self._footprints.values())
        parent = list(range(len(footprints)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        radius = self.config.cluster_radius
        for i in range(len(footprints)):
            for j in range(i + 1, len(footprints)):
                if (
                    self.cfg.hop_distance(
                        footprints[i].anchor, footprints[j].anchor
                    )
                    <= radius
                ):
                    parent[find(i)] = find(j)
        clusters: dict[int, list[_Footprint]] = {}
        for i, footprint in enumerate(footprints):
            clusters.setdefault(find(i), []).append(footprint)

        estimates: list[AttackerEstimate] = []
        for members in clusters.values():
            mass = sum(f.z for f in members)
            if mass < self.config.min_score:
                continue
            candidates = sorted(
                {f.link for f in members if f.link is not None}
            )
            if not candidates:
                continue  # back-pressure only: no placeable channel
            scored = sorted(
                ((self._explained(link, members), link) for link in candidates),
                key=lambda pair: (-pair[0], pair[1]),
            )
            # non-maximum suppression: a weaker candidate within
            # cluster_radius of an accepted one is the same attacker's
            # interference, not a second attacker
            accepted: list[tuple[float, LinkKey]] = []
            for score, link in scored:
                if any(
                    self._link_distance(link, kept) <= radius
                    for _, kept in accepted
                ):
                    continue
                accepted.append((score, link))
            for score, link in accepted:
                estimates.append(
                    AttackerEstimate(
                        link=link,
                        router=link[0],
                        score=score,
                        cluster_size=len(members),
                        cycle=cycle,
                    )
                )
        estimates.sort(key=lambda e: (-e.score, e.link))
        del estimates[self.config.max_attackers:]
        previous_links = {e.link for e in self._estimates}
        self._estimates = tuple(estimates)
        fresh = [e for e in estimates if e.link not in previous_links]
        if fresh:
            self.version += 1
            for estimate in fresh:
                self._emit(
                    LocalizeEvent(
                        cycle,
                        "estimate",
                        estimate.link,
                        estimate.router,
                        estimate.score,
                        detail=(
                            f"cluster={estimate.cluster_size} "
                            f"score={estimate.score:.2f}"
                        ),
                    )
                )

    def _link_distance(self, a: LinkKey, b: LinkKey) -> int:
        """Graph distance between two links: closest endpoint pair."""
        a_src, a_dst = link_endpoints(self.cfg, a)
        b_src, b_dst = link_endpoints(self.cfg, b)
        return min(
            self.cfg.hop_distance(x, y)
            for x in (a_src, a_dst)
            for y in (b_src, b_dst)
        )

    def _explained(self, link: LinkKey, members: list[_Footprint]) -> float:
        """Footprint mass a placement at ``link`` explains, decayed by
        propagation distance over the topology graph."""
        src, dst = link_endpoints(self.cfg, link)
        total = 0.0
        for footprint in members:
            dist = min(
                self.cfg.hop_distance(src, footprint.anchor),
                self.cfg.hop_distance(dst, footprint.anchor),
            )
            total += footprint.z / (1.0 + dist)
        return total

    # -- reporting -----------------------------------------------------
    def _emit(self, event: LocalizeEvent) -> None:
        self.events.append(event)
        for hook in self.event_hooks:
            hook(event)

    def estimates(self) -> tuple[AttackerEstimate, ...]:
        """Current attacker placements, strongest first."""
        return self._estimates

    def summary(self) -> dict:
        """JSON-friendly localization report (experiments embed this)."""
        return {
            "flags_fused": self.flags_fused,
            "footprints": len(self._footprints),
            "estimates": [
                {
                    "link": f"{e.link[0]}->{e.link[1].name}",
                    "router": e.router,
                    "score": round(e.score, 3),
                    "cluster_size": e.cluster_size,
                    "cycle": e.cycle,
                }
                for e in self._estimates
            ],
        }
