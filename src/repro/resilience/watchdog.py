"""Per-output-port progress watchdog with an escalation ladder.

The TASP attack works because the baseline retransmission protocol is
infinitely patient: a flit the trojan corrupts on every traversal
retries forever, pinning its slot and farming back-pressure into a
chip-scale deadlock.  :class:`RetransWatchdog` bounds that patience.
It observes every output port's retransmission buffer once per cycle
(wired in through ``network.monitors``) and walks pinned entries up a
ladder:

1. **backoff** — after ``backoff_after`` sends, defer relaunches with
   exponential backoff.  This stops a pinned flit from monopolising the
   link and — crucially — creates the deferred-READY windows in which
   the later rungs may act (an undeferred pinned entry relaunches the
   same cycle its NACK lands, so it is almost always IN_FLIGHT).
2. **obfuscate** — after ``obfuscate_after`` sends, force L-Ob
   engagement by planting :class:`repro.noc.retrans.NackAdvice` on the
   entry.  Against a content-triggered trojan (TASP) this is usually
   decisive: the obfuscated wire image no longer matches the target.
   The paper's threat detector normally advises this on its own; the
   watchdog's rung is the belt-and-braces path (and the only path on
   networks built without detectors — where, with no encoder either,
   the rung is skipped).
3. **drop** — after ``max_retries`` sends, give up link-level delivery:
   purge the packet via
   :func:`repro.resilience.degrade.drop_packet_at_port` and notify the
   caller (``take_dropped``) so the end-to-end ledger can resubmit it.
4. **condemn** — a link that keeps eating packets (``condemn_after_drops``)
   or stays pinned for ``condemn_pinned_age`` cycles despite the ladder
   is reported for epoch recovery (``take_condemned``).

A condemned link is *not* abandoned: the ladder keeps running on it in
**drop-only mode** (backoff + drop, no further obfuscation or condemn
events), so pinned entries keep draining into end-to-end resubmission
even when nobody consumes the condemnation.  Before this, traffic whose
sole xy route crossed a condemned link stranded silently; now the link
drains, and the strand hazard itself is surfaced as a structured
:class:`PartitionRisk` (``take_partition_risks``) naming the
destinations whose only minimal route dies with the link.

A network-level coordinator can plug into ``action_gate`` to veto
OBFUSCATE/DROP rungs (global action budgets, per-link retry backoff) —
see :mod:`repro.resilience.containment`.

The watchdog only *observes and advises* within the link-level
protocol's own legal moves (defers, advice, READY-entry drops), so all
conservation invariants hold whether or not it is attached — and it is
strictly opt-in: without it, the deadlock reproduction of the paper is
unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.network import Network
from repro.noc.retrans import EntryState, NackAdvice, RetransEntry
from repro.noc.topology import LinkKey, links_on_xy_path
from repro.resilience.degrade import DropReport, drop_packet_at_port


class EscalationStage(enum.Enum):
    BACKOFF = "backoff"
    OBFUSCATE = "obfuscate"
    DROP = "drop"
    CONDEMN = "condemn"


@dataclass(frozen=True)
class PartitionRisk:
    """A condemnation that strands traffic if the link stops serving.

    Emitted alongside CONDEMN when, under minimal xy routing, the
    condemned link is the sole first-hop route from its source router
    to some destinations.  Consumers (the containment coordinator, the
    obs layer) decide whether a reroute can absorb the risk; the
    watchdog itself falls back to drop-only mode so nothing strands
    silently either way.
    """

    cycle: int
    link: LinkKey
    #: destination routers whose only minimal route from the link's
    #: source router dies with the link
    stranded_dsts: tuple[int, ...] = ()
    detail: str = ""


@dataclass(frozen=True)
class EscalationEvent:
    """One rung taken on one entry/link (kept in a bounded log)."""

    cycle: int
    link: LinkKey
    stage: EscalationStage
    pkt_id: Optional[int] = None
    tag: Optional[int] = None
    detail: str = ""


@dataclass(frozen=True)
class WatchdogConfig:
    """Ladder thresholds, all in units of per-entry send attempts."""

    #: sends before exponential backoff starts
    backoff_after: int = 3
    #: backoff base (cycles); the delay is ``base << excess_sends``.
    #: Must exceed the link's NACK round trip (2 cycles at defaults) or
    #: the first deferral expires before it opens a READY window.
    backoff_base: int = 4
    #: backoff ceiling in cycles
    backoff_cap: int = 64
    #: sends before obfuscation is forced
    obfuscate_after: int = 6
    #: sends before the packet is dropped for end-to-end resubmission
    max_retries: int = 12
    #: packet drops on one link before it is condemned
    condemn_after_drops: int = 3
    #: a port pinned this long (with ladder-stage entries) is condemned
    #: even if drops have not accumulated
    condemn_pinned_age: int = 600
    #: escalation events retained for reporting
    event_log_capacity: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.backoff_after <= self.obfuscate_after <= self.max_retries:
            raise ValueError(
                "ladder must be ordered: backoff_after <= obfuscate_after "
                "<= max_retries"
            )
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff parameters must be positive")


class RetransWatchdog:
    """Progress watchdog over every output port of one network.

    Attach with :meth:`attach`; detach (e.g. across an epoch change)
    with :meth:`detach` and re-attach to the new network.
    """

    def __init__(self, config: Optional[WatchdogConfig] = None):
        self.config = config or WatchdogConfig()
        self.network: Optional[Network] = None
        #: (link, tag) -> send_count at the last backoff, so each retry
        #: level defers exactly once
        self._backed_off: dict[tuple[LinkKey, int], int] = {}
        #: (link, tag) -> True once obfuscation was forced on the entry
        self._advised: set[tuple[LinkKey, int]] = set()
        self._drops_per_link: dict[LinkKey, int] = {}
        self._condemned: set[LinkKey] = set()
        #: links an early detector flagged; their ladder thresholds are
        #: halved so containment starts before the tree saturates
        self._suspect: set[LinkKey] = set()
        self._pending_drops: list[DropReport] = []
        self._pending_condemned: list[LinkKey] = []
        self._pending_risks: list[PartitionRisk] = []
        #: every partition risk ever surfaced (unbounded, small)
        self.partition_risks: list[PartitionRisk] = []
        #: optional veto on OBFUSCATE/DROP rungs:
        #: ``gate(stage, link, cycle) -> bool`` (False = hold this
        #: cycle).  The containment coordinator enforces its global
        #: action budget and per-link retry backoff here.
        self.action_gate: Optional[
            Callable[[EscalationStage, LinkKey, int], bool]
        ] = None
        self.events: list[EscalationEvent] = []
        #: observers called with every EscalationEvent as it is logged
        #: (unbounded, unlike the trimmed ``events`` list); the
        #: observability layer hangs its escalation hook here
        self.event_hooks: list = []
        #: cycle of the very first ladder action (the bounded event log
        #: may have trimmed the event itself)
        self.first_event_cycle: Optional[int] = None
        # -- counters ----------------------------------------------------
        self.backoffs_applied = 0
        self.obfuscations_forced = 0
        self.packets_dropped = 0
        self.links_condemned = 0

    # -- wiring ------------------------------------------------------------
    def attach(self, network: Network) -> "RetransWatchdog":
        """Register on ``network.monitors``; per-entry ladder state is
        reset (a new epoch starts clean) but counters and the event log
        accumulate across epochs."""
        if self.network is not None:
            self.detach()
        self.network = network
        network.monitors.append(self)
        self._backed_off.clear()
        self._advised.clear()
        self._drops_per_link.clear()
        self._condemned.clear()
        self._suspect.clear()
        return self

    def detach(self) -> None:
        if self.network is not None:
            try:
                self.network.monitors.remove(self)
            except ValueError:
                pass
        self.network = None

    # -- results consumed by the campaign/caller ---------------------------
    def take_dropped(self) -> list[DropReport]:
        """Drop notifications since the last call (drop-with-notify)."""
        out, self._pending_drops = self._pending_drops, []
        return out

    def take_condemned(self) -> list[LinkKey]:
        """Links condemned since the last call."""
        out, self._pending_condemned = self._pending_condemned, []
        return out

    def take_partition_risks(self) -> list[PartitionRisk]:
        """Partition risks surfaced since the last call."""
        out, self._pending_risks = self._pending_risks, []
        return out

    @property
    def condemned_links(self) -> frozenset[LinkKey]:
        """Links condemned so far this epoch (drop-only mode)."""
        return frozenset(self._condemned)

    @property
    def suspect_links(self) -> frozenset[LinkKey]:
        """Links under detector-accelerated ladder thresholds."""
        return frozenset(self._suspect)

    # -- early-detector feed ------------------------------------------------
    def mark_suspect(self, key: LinkKey) -> None:
        """An online detector flagged ``key`` as statistically anomalous
        *before* the ladder completed on its own.  The ladder keeps its
        shape but every later rung fires at half its configured send
        threshold (ordering preserved), so containment starts early on
        the flagged link while unflagged links see the exact default
        ladder.  Idempotent; cleared by :meth:`reset_link`."""
        self._suspect.add(key)

    def _ladder_thresholds(self, key: LinkKey) -> tuple[int, int, int, int]:
        """Effective (obfuscate_after, max_retries, condemn_after_drops,
        condemn_pinned_age) for ``key``: the configured values, halved
        — without breaking ladder ordering — while the link is suspect."""
        cfg = self.config
        if key not in self._suspect:
            return (
                cfg.obfuscate_after,
                cfg.max_retries,
                cfg.condemn_after_drops,
                cfg.condemn_pinned_age,
            )
        obfuscate_after = max(cfg.backoff_after, cfg.obfuscate_after // 2)
        return (
            obfuscate_after,
            max(obfuscate_after, cfg.max_retries // 2),
            max(1, cfg.condemn_after_drops // 2),
            max(1, cfg.condemn_pinned_age // 2),
        )

    # -- reinstatement -------------------------------------------------------
    def reset_link(self, key: LinkKey) -> None:
        """Restart the ladder from rung 0 for a reinstated link.

        Condemnation used to be terminal, so per-link ladder state
        (backoff levels, forced-advice marks, the drop tally, the
        condemned flag, detector suspicion) survived it; a link
        returned to service would have resumed mid-ladder and been
        re-condemned by its *old* drop count on the first slip.  The
        probation path calls this so a reinstated link is judged like
        a fresh one."""
        self._condemned.discard(key)
        self._suspect.discard(key)
        self._drops_per_link.pop(key, None)
        self._backed_off = {
            state_key: sends
            for state_key, sends in self._backed_off.items()
            if state_key[0] != key
        }
        self._advised = {
            state_key for state_key in self._advised if state_key[0] != key
        }
        if key in self._pending_condemned:
            self._pending_condemned = [
                k for k in self._pending_condemned if k != key
            ]

    def _gate_allows(
        self, stage: EscalationStage, key: LinkKey, cycle: int
    ) -> bool:
        return self.action_gate is None or self.action_gate(stage, key, cycle)

    def next_event_cycle(self, network: Network, cycle: int):
        """Event-engine contract: the ladder must observe every cycle
        any retransmission buffer is non-empty — the drop rung fires on
        the exact cycle an entry turns READY and the containment gate
        draws per-denial jitter, both cycle-sensitive.  On a quiescent
        network every buffer is empty and :meth:`on_cycle` is a proven
        no-op, so the watchdog demands nothing."""
        return None if network.quiescent else cycle

    # -- the per-cycle ladder ----------------------------------------------
    def on_cycle(self, network: Network, cycle: int) -> None:
        cfg = self.config
        for key in network.links:
            out = network.output_port_of(key)
            if out.retrans.is_empty:
                continue
            condemned = key in self._condemned
            obfuscate_after, max_retries, _, _ = self._ladder_thresholds(key)
            ladder_active = False
            for entry in list(out.retrans):
                sends = entry.send_count
                if sends < cfg.backoff_after:
                    continue
                ladder_active = True
                if (
                    sends >= max_retries
                    and entry.state is EntryState.READY
                    and self._gate_allows(EscalationStage.DROP, key, cycle)
                ):
                    # READY means no transmission is on the wire (backoff
                    # deferral created this window) — safe to purge.
                    self._drop(network, key, entry, cycle)
                    continue
                if (
                    sends >= obfuscate_after
                    and not condemned
                    and self._gate_allows(EscalationStage.OBFUSCATE, key, cycle)
                ):
                    self._force_obfuscation(network, key, entry, cycle)
                self._apply_backoff(network, key, entry, cycle)
            if not condemned:
                self._maybe_condemn(network, key, cycle, ladder_active)
        self._prune(network)

    # -- rungs ---------------------------------------------------------------
    def _apply_backoff(
        self, network: Network, key: LinkKey, entry: RetransEntry, cycle: int
    ) -> None:
        cfg = self.config
        state_key = (key, entry.tag)
        if self._backed_off.get(state_key) == entry.send_count:
            return  # this retry level already deferred once
        if entry.defer_until > cycle:
            return  # an earlier defer is still pending
        # Deferring an IN_FLIGHT entry is both legal and necessary:
        # ``defer_until`` only gates the *next* launch, and a pinned
        # entry relaunches the same cycle its NACK lands, so this is the
        # only way to ever observe it in a READY window.
        excess = min(entry.send_count - cfg.backoff_after, 16)
        delay = min(cfg.backoff_cap, cfg.backoff_base << excess)
        entry.defer_until = cycle + delay
        self._backed_off[state_key] = entry.send_count
        self.backoffs_applied += 1
        network.stats.retrans_backoffs += 1
        self._log(
            EscalationEvent(
                cycle, key, EscalationStage.BACKOFF,
                pkt_id=entry.flit.pkt_id, tag=entry.tag,
                detail=f"sends={entry.send_count} defer={delay}",
            )
        )

    def _force_obfuscation(
        self, network: Network, key: LinkKey, entry: RetransEntry, cycle: int
    ) -> None:
        state_key = (key, entry.tag)
        if state_key in self._advised:
            return
        if network.output_port_of(key).lob is None:
            return  # no encoder on this port: the rung does not exist
        self._advised.add(state_key)
        already = (
            entry.ob_advice is not None
            and entry.ob_advice.enable_obfuscation
        )
        if not already:
            # suspect links reach this rung below the configured send
            # threshold; clamp so the method ladder starts at step 0
            method = max(0, entry.send_count - self.config.obfuscate_after)
            entry.ob_advice = NackAdvice(
                enable_obfuscation=True, method_index=method
            )
        self.obfuscations_forced += 1
        network.stats.lob_escalations += 1
        self._log(
            EscalationEvent(
                cycle, key, EscalationStage.OBFUSCATE,
                pkt_id=entry.flit.pkt_id, tag=entry.tag,
                detail="detector-advised" if already else "forced",
            )
        )

    def _drop(
        self, network: Network, key: LinkKey, entry: RetransEntry, cycle: int
    ) -> None:
        pkt_id = entry.flit.pkt_id
        report = drop_packet_at_port(network, key, pkt_id, cycle)
        self._pending_drops.append(report)
        self.packets_dropped += 1
        self._drops_per_link[key] = self._drops_per_link.get(key, 0) + 1
        self._log(
            EscalationEvent(
                cycle, key, EscalationStage.DROP,
                pkt_id=pkt_id, tag=entry.tag,
                detail=(
                    f"entries={report.entries_dropped} "
                    f"staged={report.staged_discarded} "
                    f"in_flight={report.entries_in_flight}"
                ),
            )
        )

    def _maybe_condemn(
        self, network: Network, key: LinkKey, cycle: int, ladder_active: bool
    ) -> None:
        out = network.output_port_of(key)
        _, _, condemn_after_drops, condemn_pinned_age = (
            self._ladder_thresholds(key)
        )
        by_drops = self._drops_per_link.get(key, 0) >= condemn_after_drops
        by_age = (
            ladder_active
            and out.retrans.oldest_wait(cycle) > condemn_pinned_age
        )
        if not (by_drops or by_age):
            return
        self._condemned.add(key)
        self._pending_condemned.append(key)
        self.links_condemned += 1
        self._log(
            EscalationEvent(
                cycle, key, EscalationStage.CONDEMN,
                detail="drop-threshold" if by_drops else "pinned-age",
            )
        )
        self._surface_partition_risk(network, key, cycle)

    def _surface_partition_risk(
        self, network: Network, key: LinkKey, cycle: int
    ) -> None:
        """Name the destinations whose only minimal route dies with
        ``key``; the link itself stays in drop-only mode regardless."""
        cfg = network.cfg
        src_router = key[0]
        stranded = tuple(
            dst
            for dst in range(cfg.num_routers)
            if dst != src_router
            and links_on_xy_path(cfg, src_router, dst)[0] == key
        )
        if not stranded:
            return
        risk = PartitionRisk(
            cycle=cycle,
            link=key,
            stranded_dsts=stranded,
            detail=f"sole xy first hop from router {src_router}",
        )
        self.partition_risks.append(risk)
        self._pending_risks.append(risk)

    # -- housekeeping --------------------------------------------------------
    def _prune(self, network: Network) -> None:
        """Forget ladder state of entries that have retired."""
        if len(self._backed_off) < 512 and len(self._advised) < 512:
            return
        live = {
            (key, entry.tag)
            for key in network.links
            for entry in network.output_port_of(key).retrans
        }
        self._backed_off = {
            k: v for k, v in self._backed_off.items() if k in live
        }
        self._advised &= live

    def _log(self, event: EscalationEvent) -> None:
        if self.first_event_cycle is None:
            self.first_event_cycle = event.cycle
        self.events.append(event)
        if len(self.events) > self.config.event_log_capacity:
            del self.events[: len(self.events) // 2]
        for hook in self.event_hooks:
            hook(event)

    @property
    def activity(self) -> int:
        """Monotonic count of all ladder actions (progress signal)."""
        return (
            self.backoffs_applied
            + self.obfuscations_forced
            + self.packets_dropped
            + self.links_condemned
        )

    def stages_taken(self) -> tuple[str, ...]:
        """Ladder rungs that fired at least once, in ladder order."""
        out = []
        if self.backoffs_applied:
            out.append(EscalationStage.BACKOFF.value)
        if self.obfuscations_forced:
            out.append(EscalationStage.OBFUSCATE.value)
        if self.packets_dropped:
            out.append(EscalationStage.DROP.value)
        if self.links_condemned:
            out.append(EscalationStage.CONDEMN.value)
        return tuple(out)
